package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, v := range []VertexID{0, 1, 255, 65536, 1<<32 - 1} {
		got, err := DecodeKey(KeyBytes(v))
		if err != nil {
			t.Fatalf("DecodeKey(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
	if _, err := DecodeKey([]byte{1, 2, 3}); err == nil {
		t.Error("short key accepted")
	}
}

func TestKeyOrderingMatchesNumeric(t *testing.T) {
	// The MR engine sorts keys as bytes; vertex order must survive.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := VertexID(rng.Uint32())
		b := VertexID(rng.Uint32())
		byteLess := bytes.Compare(KeyBytes(a), KeyBytes(b)) < 0
		if byteLess != (a < b) {
			t.Fatalf("byte order disagrees with numeric order for %d, %d", a, b)
		}
	}
}

func randomPath(rng *rand.Rand, maxHops int) ExcessPath {
	n := rng.Intn(maxHops + 1)
	var p ExcessPath
	for i := 0; i < n; i++ {
		p.Edges = append(p.Edges, PathEdge{
			ID:   EdgeID(rng.Uint32()),
			From: VertexID(rng.Uint32()),
			To:   VertexID(rng.Uint32()),
			Flow: rng.Int63n(2001) - 1000,
			Cap:  rng.Int63n(1000),
			Fwd:  rng.Intn(2) == 0,
		})
	}
	return p
}

func randomValue(rng *rand.Rand) *VertexValue {
	v := &VertexValue{}
	for i := rng.Intn(4); i > 0; i-- {
		v.Su = append(v.Su, randomPath(rng, 6))
	}
	for i := rng.Intn(4); i > 0; i-- {
		v.Tu = append(v.Tu, randomPath(rng, 6))
	}
	for i := rng.Intn(8); i > 0; i-- {
		v.Eu = append(v.Eu, Edge{
			To:     VertexID(rng.Uint32()),
			ID:     EdgeID(rng.Uint32()),
			Flow:   rng.Int63n(2001) - 1000,
			Cap:    rng.Int63n(1000),
			RevCap: rng.Int63n(1000),
			Fwd:    rng.Intn(2) == 0,
		})
	}
	if rng.Intn(2) == 0 {
		for range v.Eu {
			v.SentS = append(v.SentS, rng.Uint64())
			v.SentT = append(v.SentT, rng.Uint64())
		}
	}
	return v
}

// valuesEqual compares semantically (nil and empty slices are equal).
func valuesEqual(a, b *VertexValue) bool {
	if len(a.Su) != len(b.Su) || len(a.Tu) != len(b.Tu) || len(a.Eu) != len(b.Eu) ||
		len(a.SentS) != len(b.SentS) || len(a.SentT) != len(b.SentT) {
		return false
	}
	for i := range a.Su {
		if !pathsEqual(&a.Su[i], &b.Su[i]) {
			return false
		}
	}
	for i := range a.Tu {
		if !pathsEqual(&a.Tu[i], &b.Tu[i]) {
			return false
		}
	}
	for i := range a.Eu {
		if a.Eu[i] != b.Eu[i] {
			return false
		}
	}
	for i := range a.SentS {
		if a.SentS[i] != b.SentS[i] {
			return false
		}
	}
	for i := range a.SentT {
		if a.SentT[i] != b.SentT[i] {
			return false
		}
	}
	return true
}

func pathsEqual(a, b *ExcessPath) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		v := randomValue(rng)
		enc := EncodeValue(v)
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !valuesEqual(v, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", v, got)
		}
	}
}

func TestDecodeIntoReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var reused VertexValue
	for i := 0; i < 200; i++ {
		v := randomValue(rng)
		enc := EncodeValue(v)
		reused.Reset()
		if err := DecodeValueInto(enc, &reused); err != nil {
			t.Fatalf("decode into: %v", err)
		}
		if !valuesEqual(v, &reused) {
			t.Fatalf("reuse decode mismatch at iteration %d", i)
		}
	}
}

// TestDecodeIntoNoAliasing guards against the FF4 corruption class: after
// decoding into reused storage, every stored path must own its backing
// array exclusively — mutating one path must not change another.
func TestDecodeIntoNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var reused VertexValue
	for i := 0; i < 300; i++ {
		v := randomValue(rng)
		enc := EncodeValue(v)
		reused.Reset()
		if err := DecodeValueInto(enc, &reused); err != nil {
			t.Fatalf("decode into: %v", err)
		}
		// Simulate the saturated-path compaction the algorithm performs,
		// then decode the next record and verify integrity.
		if len(reused.Su) > 1 {
			reused.Su = reused.Su[:len(reused.Su)-1]
		}
		for pi := range reused.Su {
			for ei := range reused.Su[pi].Edges {
				reused.Su[pi].Edges[ei].Flow = -99999
			}
		}
		w := randomValue(rng)
		enc2 := EncodeValue(w)
		reused.Reset()
		if err := DecodeValueInto(enc2, &reused); err != nil {
			t.Fatalf("second decode: %v", err)
		}
		if !valuesEqual(w, &reused) {
			t.Fatalf("aliasing corruption at iteration %d", i)
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := randomValue(rng)
	enc := EncodeValue(v)

	// Truncations at every position must error or be detected, never
	// panic or silently succeed with trailing garbage semantics.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeValue(enc[:cut]); err == nil {
			// An empty prefix may decode as an empty value only if the
			// original was empty too; anything else must fail.
			if cut != len(enc) && !valuesEqual(v, &VertexValue{}) {
				t.Fatalf("truncation at %d silently accepted", cut)
			}
		}
	}
	// Trailing garbage must be rejected.
	if _, err := DecodeValue(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDecodeImplausibleCount(t *testing.T) {
	// A huge length prefix must be rejected without attempting the
	// allocation.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := DecodeValue(data); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestPathRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPath(r, 12)
		got, err := DecodePath(EncodePath(&p))
		if err != nil {
			return false
		}
		return pathsEqual(&p, &got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeValueDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := randomValue(rng)
	a := EncodeValue(v)
	b := EncodeValue(v)
	if !bytes.Equal(a, b) {
		t.Error("encoding is not deterministic")
	}
	// Decode+re-encode must be byte-identical (canonical form).
	dec, err := DecodeValue(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, EncodeValue(dec)) {
		t.Error("re-encoding after decode changed bytes")
	}
}

func TestAppendValueGrowsDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := randomValue(rng)
	prefix := []byte("prefix")
	out := AppendValue(append([]byte(nil), prefix...), v)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendValue clobbered prefix")
	}
	dec, err := DecodeValue(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !valuesEqual(v, dec) {
		t.Error("append-encoded value does not round trip")
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	// Property: for arbitrary generated values, encode/decode is the
	// identity under semantic equality.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng)
		dec, err := DecodeValue(EncodeValue(v))
		if err != nil {
			return false
		}
		return valuesEqual(v, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
