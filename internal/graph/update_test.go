package graph

import "testing"

func updateBase() *Input {
	return &Input{
		NumVertices: 4,
		Source:      0,
		Sink:        3,
		Edges: []InputEdge{
			{U: 0, V: 1, Cap: 5},
			{U: 1, V: 2, Cap: 5},
			{U: 2, V: 3, Cap: 5, Directed: true},
		},
	}
}

func TestApplyUpdatesInsertAssignsNextID(t *testing.T) {
	in := updateBase()
	out, err := ApplyUpdates(in, []Update{
		InsertEdge(0, 2, 7, false),
		InsertEdge(1, 3, 9, true),
	})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if len(out.Edges) != 5 {
		t.Fatalf("got %d edges, want 5", len(out.Edges))
	}
	if e := out.Edges[3]; e.U != 0 || e.V != 2 || e.Cap != 7 || e.Directed {
		t.Errorf("edge 3 = %+v, want 0-2 cap 7 undirected", e)
	}
	if e := out.Edges[4]; e.U != 1 || e.V != 3 || e.Cap != 9 || !e.Directed {
		t.Errorf("edge 4 = %+v, want 1->3 cap 9 directed", e)
	}
	if len(in.Edges) != 3 {
		t.Errorf("input mutated: %d edges", len(in.Edges))
	}
}

func TestApplyUpdatesSetCapAndDelete(t *testing.T) {
	in := updateBase()
	out, err := ApplyUpdates(in, []Update{
		SetCapacity(1, 2, false),
		DeleteEdge(0),
	})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if out.Edges[1].Cap != 2 {
		t.Errorf("edge 1 cap = %d, want 2", out.Edges[1].Cap)
	}
	if out.Edges[0].Cap != 0 {
		t.Errorf("deleted edge 0 cap = %d, want 0", out.Edges[0].Cap)
	}
	if len(out.Edges) != 3 {
		t.Errorf("delete must keep the edge in place; got %d edges", len(out.Edges))
	}
	if in.Edges[0].Cap != 5 || in.Edges[1].Cap != 5 {
		t.Errorf("input mutated: %+v", in.Edges)
	}
}

func TestApplyUpdatesLaterUpdateSeesEarlierInsert(t *testing.T) {
	in := updateBase()
	out, err := ApplyUpdates(in, []Update{
		InsertEdge(0, 2, 7, false),
		SetCapacity(3, 1, false), // targets the edge inserted above
	})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if out.Edges[3].Cap != 1 {
		t.Errorf("in-batch inserted edge cap = %d, want 1", out.Edges[3].Cap)
	}
}

func TestApplyUpdatesValidation(t *testing.T) {
	cases := []struct {
		name  string
		batch []Update
	}{
		{"insert out of range", []Update{InsertEdge(0, 99, 1, false)}},
		{"insert self loop", []Update{InsertEdge(2, 2, 1, false)}},
		{"insert negative cap", []Update{InsertEdge(0, 2, -1, false)}},
		{"setcap unknown edge", []Update{SetCapacity(42, 1, false)}},
		{"setcap negative", []Update{SetCapacity(0, -3, false)}},
		{"unknown op", []Update{{Op: 99}}},
	}
	for _, tc := range cases {
		if _, err := ApplyUpdates(updateBase(), tc.batch); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
