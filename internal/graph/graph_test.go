package graph

import (
	"testing"
)

func TestEdgeResidual(t *testing.T) {
	tests := []struct {
		name     string
		edge     Edge
		fwd, rev int64
	}{
		{"fresh undirected", Edge{Cap: 5, RevCap: 5}, 5, 5},
		{"half used", Edge{Cap: 5, RevCap: 5, Flow: 3}, 2, 8},
		{"saturated", Edge{Cap: 5, RevCap: 5, Flow: 5}, 0, 10},
		{"reverse flow", Edge{Cap: 5, RevCap: 5, Flow: -2}, 7, 3},
		{"directed fresh", Edge{Cap: 4, RevCap: 0}, 4, 0},
		{"directed used", Edge{Cap: 4, RevCap: 0, Flow: 4}, 0, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.edge.Residual(); got != tc.fwd {
				t.Errorf("Residual() = %d, want %d", got, tc.fwd)
			}
			if got := tc.edge.RevResidual(); got != tc.rev {
				t.Errorf("RevResidual() = %d, want %d", got, tc.rev)
			}
		})
	}
}

func TestEdgeApplyDelta(t *testing.T) {
	fwd := Edge{Cap: 10, Fwd: true}
	fwd.ApplyDelta(3)
	if fwd.Flow != 3 {
		t.Errorf("forward half flow = %d, want 3", fwd.Flow)
	}
	bwd := Edge{Cap: 10, Fwd: false}
	bwd.ApplyDelta(3)
	if bwd.Flow != -3 {
		t.Errorf("backward half flow = %d, want -3", bwd.Flow)
	}
}

// makePath builds a simple path over consecutive vertices with the given
// per-hop capacity and flow.
func makePath(startVertex VertexID, startEdge EdgeID, hops int, cap, flow int64) ExcessPath {
	var p ExcessPath
	for i := 0; i < hops; i++ {
		p.Edges = append(p.Edges, PathEdge{
			ID:   startEdge + EdgeID(i),
			From: startVertex + VertexID(i),
			To:   startVertex + VertexID(i+1),
			Cap:  cap,
			Flow: flow,
			Fwd:  true,
		})
	}
	return p
}

func TestPathResidualAndSaturation(t *testing.T) {
	p := makePath(0, 0, 3, 5, 2)
	if got := p.Residual(); got != 3 {
		t.Errorf("Residual = %d, want 3", got)
	}
	if p.Saturated() {
		t.Error("unsaturated path reported saturated")
	}
	p.Edges[1].Flow = 5
	if !p.Saturated() {
		t.Error("saturated hop not detected")
	}

	empty := ExcessPath{}
	if empty.Residual() != CapInf {
		t.Errorf("empty path residual = %d, want CapInf", empty.Residual())
	}
	if empty.Saturated() {
		t.Error("empty path reported saturated")
	}
}

func TestPathResidualRepeatedEdge(t *testing.T) {
	// A walk that uses the same edge twice in the same direction must
	// halve the per-use residual.
	p := ExcessPath{Edges: []PathEdge{
		{ID: 1, From: 0, To: 1, Cap: 5, Fwd: true},
		{ID: 2, From: 1, To: 0, Cap: 9, Fwd: true},
		{ID: 1, From: 0, To: 1, Cap: 5, Fwd: true},
	}}
	if got := p.Residual(); got != 2 {
		t.Errorf("Residual = %d, want 2 (5 cap / 2 uses)", got)
	}
}

func TestPathContainsHeadTail(t *testing.T) {
	p := makePath(10, 0, 3, 1, 0)
	if p.Head() != 10 || p.Tail() != 13 {
		t.Errorf("head/tail = %d/%d, want 10/13", p.Head(), p.Tail())
	}
	for v := VertexID(10); v <= 13; v++ {
		if !p.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	if p.Contains(14) || p.Contains(9) {
		t.Error("Contains reported vertex not on path")
	}
}

func TestExtendSource(t *testing.T) {
	p := makePath(0, 0, 2, 3, 1)
	e := Edge{To: 9, ID: 7, Flow: 1, Cap: 4, RevCap: 4, Fwd: false}
	q := p.ExtendSource(2, &e)
	if q.Len() != 3 {
		t.Fatalf("extended length = %d, want 3", q.Len())
	}
	last := q.Edges[2]
	if last.From != 2 || last.To != 9 || last.ID != 7 || last.Fwd {
		t.Errorf("bad extension hop: %+v", last)
	}
	if last.Flow != 1 || last.Cap != 4 {
		t.Errorf("extension hop flow/cap = %d/%d, want 1/4", last.Flow, last.Cap)
	}
	// The original path is unchanged (copy semantics).
	if p.Len() != 2 {
		t.Errorf("original mutated: len=%d", p.Len())
	}
}

func TestExtendSink(t *testing.T) {
	p := makePath(5, 0, 2, 3, 0) // 5 -> 6 -> 7
	e := Edge{To: 4, ID: 9, Flow: 2, Cap: 6, RevCap: 8, Fwd: true}
	q := p.ExtendSink(5, &e)
	if q.Len() != 3 {
		t.Fatalf("extended length = %d, want 3", q.Len())
	}
	first := q.Edges[0]
	if first.From != 4 || first.To != 5 {
		t.Errorf("extension hop endpoints = %d->%d, want 4->5", first.From, first.To)
	}
	if first.Flow != -2 || first.Cap != 8 || first.Fwd {
		t.Errorf("mirrored hop = %+v, want flow=-2 cap=8 fwd=false", first)
	}
	if q.Head() != 4 || q.Tail() != 7 {
		t.Errorf("head/tail = %d/%d, want 4/7", q.Head(), q.Tail())
	}
}

func TestConcat(t *testing.T) {
	src := makePath(0, 0, 2, 1, 0)  // 0 -> 1 -> 2
	snk := makePath(2, 10, 3, 1, 0) // 2 -> 3 -> 4 -> 5
	aug := Concat(&src, &snk)
	if aug.Len() != 5 {
		t.Fatalf("concat length = %d, want 5", aug.Len())
	}
	if aug.Head() != 0 || aug.Tail() != 5 {
		t.Errorf("head/tail = %d/%d, want 0/5", aug.Head(), aug.Tail())
	}
}

func TestSignature(t *testing.T) {
	a := makePath(0, 0, 3, 1, 0)
	b := makePath(0, 0, 3, 1, 0)
	if a.Signature() != b.Signature() {
		t.Error("identical paths have different signatures")
	}
	// Flow and capacity changes must not change the signature (the FF5
	// sent-flag survives flow updates).
	b.Edges[0].Flow = 1
	if a.Signature() != b.Signature() {
		t.Error("flow change altered signature")
	}
	// A direction flip must change it.
	b.Edges[0].Fwd = false
	if a.Signature() == b.Signature() {
		t.Error("direction flip did not alter signature")
	}
	c := makePath(0, 5, 3, 1, 0) // different edge IDs
	if a.Signature() == c.Signature() {
		t.Error("different edges did not alter signature")
	}
	var empty ExcessPath
	if empty.Signature() == a.Signature() {
		t.Error("empty path collides with non-empty path")
	}
}

func TestVertexValueMasterAndReset(t *testing.T) {
	var v VertexValue
	if v.IsMaster() {
		t.Error("empty value is a master")
	}
	v.Eu = append(v.Eu, Edge{To: 1})
	if !v.IsMaster() {
		t.Error("value with edges is not a master")
	}
	v.Su = append(v.Su, ExcessPath{})
	v.SentS = append(v.SentS, 7)
	v.Reset()
	if len(v.Su) != 0 || len(v.Eu) != 0 || len(v.SentS) != 0 {
		t.Error("Reset did not clear lengths")
	}
	if cap(v.Eu) == 0 {
		t.Error("Reset discarded capacity")
	}
}

func TestInputValidate(t *testing.T) {
	valid := Input{NumVertices: 3, Source: 0, Sink: 2,
		Edges: []InputEdge{{U: 0, V: 1, Cap: 1}, {U: 1, V: 2, Cap: 1}}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}

	tests := []struct {
		name string
		in   Input
	}{
		{"no vertices", Input{}},
		{"source out of range", Input{NumVertices: 2, Source: 5, Sink: 1}},
		{"sink out of range", Input{NumVertices: 2, Source: 0, Sink: 5}},
		{"source equals sink", Input{NumVertices: 2, Source: 1, Sink: 1}},
		{"edge out of range", Input{NumVertices: 2, Source: 0, Sink: 1,
			Edges: []InputEdge{{U: 0, V: 9, Cap: 1}}}},
		{"self loop", Input{NumVertices: 2, Source: 0, Sink: 1,
			Edges: []InputEdge{{U: 0, V: 0, Cap: 1}}}},
		{"negative capacity", Input{NumVertices: 2, Source: 0, Sink: 1,
			Edges: []InputEdge{{U: 0, V: 1, Cap: -1}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.in.Validate(); err == nil {
				t.Error("invalid graph accepted")
			}
		})
	}
}
