// Package portfolio is an instance-probing solver portfolio for the
// max-flow engines in this repository. The source paper's FFMR
// algorithm is designed for small-world graphs: its round count is
// bounded below by the source-sink distance, and its per-round cost by
// the shuffle volume. Both assumptions fail off the small-world regime
// — high-diameter graphs (lattices, road-like networks) blow up the
// round count, and scale-free graphs carry a large low-degree fringe
// that inflates every round's shuffle for no flow. This package probes
// an instance cheaply, then composes the right pipeline:
//
//   - a double-sweep MR-BFS diameter estimate (two RunBFS runs: one
//     from the source, one from the farthest vertex found) and a
//     degree-distribution fit (graphgen.PowerLawFit);
//   - Choose turns the probe into a Decision: solve with FFMR or the
//     synchronous push-relabel engine (internal/prflow), optionally
//     after the scale-free core reduction (internal/prep);
//   - the "auto" engine registered with core.RegisterEngine executes
//     the decision, lifts reduced flows back with prep.Uncontract,
//     verifies the lift with core.CheckAssignment, and persists the
//     standard final residual state under the caller's path prefix, so
//     downstream consumers (Validate, dynamic snapshots, the service)
//     cannot tell which pipeline ran.
package portfolio

import (
	"fmt"
	"math"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/prep"
	_ "ffmr/internal/prflow" // register the "prflow" engine for decisions
)

// EngineName is the core.Options.Engine value this package registers.
const EngineName = "auto"

func init() {
	core.RegisterEngine(EngineName, run)
}

// Probe is what the portfolio knows about an instance before solving
// it.
type Probe struct {
	Vertices int
	Edges    int
	// DiameterEstimate is the double-sweep BFS lower bound on the
	// graph's diameter (exactly the MR-BFS the paper uses to estimate
	// D, run twice).
	DiameterEstimate int
	// SinkDistance is the source-sink hop distance (-1 if unreachable).
	SinkDistance int
	// Fit summarizes the degree distribution.
	Fit graphgen.DegreeFit
	// BFSSimTime and BFSWallTime are the probe's own cost.
	BFSSimTime  time.Duration
	BFSWallTime time.Duration
}

// Decision is the portfolio's plan for an instance.
type Decision struct {
	// Engine is "ffmr" or "prflow" (never "auto").
	Engine string
	// Reduce applies the prep core reduction before solving.
	Reduce bool
	// Reason is a human-readable justification, logged and used in
	// benchmark reports.
	Reason string
}

// Thresholds for Choose, exported for tests and experiments.
const (
	// ReduceLowDegreeFrac: reduce when at least this fraction of
	// vertices is peelable (degree <= 2). Barabási-Albert graphs with
	// m=2 sit near 0.5; Watts-Strogatz and grids near 0.
	ReduceLowDegreeFrac = 0.25
	// PRFlowDiameterFactor and PRFlowMinDiameter: use push-relabel when
	// the diameter estimate is at least factor*log2(n) and at least the
	// minimum — i.e. the instance is decisively not small-world, so
	// FFMR would pay at least diameter rounds.
	PRFlowDiameterFactor = 3.0
	PRFlowMinDiameter    = 12
)

// ProbeInstance measures the instance with two MR-BFS sweeps plus an
// in-memory degree fit. The sweeps run under pathPrefix and are cleaned
// up unless keep is set.
func ProbeInstance(cluster *mapreduce.Cluster, in *graph.Input, reducers int, pathPrefix string, keep bool) (*Probe, error) {
	fs := cluster.FS
	p := &Probe{
		Vertices: in.NumVertices,
		Edges:    len(in.Edges),
		Fit:      graphgen.PowerLawFit(in),
	}

	sweep1 := pathPrefix + "sweep1/"
	res1, err := core.RunBFS(cluster, in, reducers, sweep1)
	if err != nil {
		return nil, fmt.Errorf("portfolio: probe sweep 1: %w", err)
	}
	p.SinkDistance = res1.SinkDist
	p.BFSSimTime += res1.TotalSimTime
	p.BFSWallTime += res1.TotalWallTime
	dist, err := core.BFSDistances(fs, sweep1, res1)
	if err != nil {
		return nil, err
	}
	if !keep {
		fs.DeletePrefix(sweep1)
	}
	far := in.Source
	var farDist int64
	for u, d := range dist {
		if d > farDist || (d == farDist && u < far) {
			far, farDist = u, d
		}
	}
	p.DiameterEstimate = int(farDist)

	// Second sweep from the eccentric vertex of the first.
	if far != in.Source {
		sweep2 := pathPrefix + "sweep2/"
		in2 := &graph.Input{NumVertices: in.NumVertices, Edges: in.Edges, Source: far, Sink: in.Source}
		res2, err := core.RunBFS(cluster, in2, reducers, sweep2)
		if err != nil {
			return nil, fmt.Errorf("portfolio: probe sweep 2: %w", err)
		}
		p.BFSSimTime += res2.TotalSimTime
		p.BFSWallTime += res2.TotalWallTime
		dist2, err := core.BFSDistances(fs, sweep2, res2)
		if err != nil {
			return nil, err
		}
		if !keep {
			fs.DeletePrefix(sweep2)
		}
		for _, d := range dist2 {
			if int(d) > p.DiameterEstimate {
				p.DiameterEstimate = int(d)
			}
		}
	}
	return p, nil
}

// Choose maps a probe to a plan. The rules are deliberately coarse —
// the probe separates the generator families cleanly (see the package
// tests), and a misclassification costs performance, never
// correctness, because every pipeline is exact.
func Choose(p *Probe) Decision {
	d := Decision{Engine: "ffmr"}
	if p.Fit.FracLowDegree >= ReduceLowDegreeFrac {
		d.Reduce = true
		d.Reason = fmt.Sprintf("scale-free fringe: %.0f%% of vertices peelable (alpha %.2f); ",
			100*p.Fit.FracLowDegree, p.Fit.Alpha)
	}
	logN := math.Log2(float64(p.Vertices) + 1)
	if p.DiameterEstimate >= PRFlowMinDiameter &&
		float64(p.DiameterEstimate) >= PRFlowDiameterFactor*logN {
		d.Engine = "prflow"
		d.Reason += fmt.Sprintf("high diameter ~%d >= %.0f (3*log2 n): push-relabel over FFMR",
			p.DiameterEstimate, PRFlowDiameterFactor*logN)
	} else {
		d.Reason += fmt.Sprintf("small-world diameter ~%d (sink at %d): FFMR",
			p.DiameterEstimate, p.SinkDistance)
	}
	return d
}

// run is the "auto" core.EngineFunc: probe, choose, execute, and leave
// behind the same persisted state as any other engine.
func run(cluster *mapreduce.Cluster, in *graph.Input, opts core.Options) (*core.Result, error) {
	fs := cluster.FS
	log := obsv.Or(opts.Log).With("run", EngineName)
	start := time.Now()

	probePrefix := opts.PathPrefix + "probe/"
	probe, err := ProbeInstance(cluster, in, opts.Reducers, probePrefix, opts.KeepIntermediate)
	if err != nil {
		return nil, err
	}
	dec := Choose(probe)
	log.Info("portfolio decision",
		"engine", dec.Engine,
		"reduce", dec.Reduce,
		"reason", dec.Reason,
		"diameter", probe.DiameterEstimate,
		"sink_dist", probe.SinkDistance,
		"low_degree_frac", probe.Fit.FracLowDegree)

	var red *prep.Reduction
	if dec.Reduce {
		red, err = prep.Reduce(in)
		if err != nil {
			return nil, err
		}
		if red.Stats.EdgesRemovedFrac() < 0.10 {
			// The fringe did not materialize; reduction overhead is not
			// worth a sub-10% edge saving.
			log.Info("portfolio reduction skipped",
				"removed_frac", red.Stats.EdgesRemovedFrac())
			red = nil
		} else {
			log.Info("portfolio reduction",
				"vertices_peeled", red.Stats.VerticesPeeled,
				"edges_before", red.Stats.OriginalEdges,
				"edges_after", red.Stats.CoreEdges,
				"gadgets", red.Stats.Gadgets)
		}
	}

	if red == nil {
		// Direct: run the chosen engine in place, under the caller's own
		// prefix, so its persisted state is already where it belongs.
		direct := opts
		direct.Engine = dec.Engine
		res, err := core.Run(cluster, in, direct)
		if err != nil {
			return nil, err
		}
		res.TotalSimTime += probe.BFSSimTime
		res.TotalWallTime = time.Since(start)
		return res, nil
	}

	// Reduced: solve the core under a sub-prefix (keeping its state so
	// flows can be extracted), lift the flow back to the original
	// instance, verify, and persist the lifted state under the caller's
	// prefix.
	coreOpts := opts
	coreOpts.Engine = dec.Engine
	coreOpts.PathPrefix = opts.PathPrefix + "core/"
	coreOpts.KeepIntermediate = true
	coreRes, err := core.Run(cluster, red.Core, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("portfolio: core solve: %w", err)
	}
	resolved := coreOpts.WithDefaults(cluster.Nodes * cluster.SlotsPerNode)
	coreFlows, err := core.ExtractFlows(fs, red.Core, resolved, coreRes)
	if err != nil {
		return nil, fmt.Errorf("portfolio: core flows: %w", err)
	}
	flows, err := red.Uncontract(coreFlows)
	if err != nil {
		return nil, err
	}
	// Proof-carrying check of the whole reduce/solve/lift pipeline.
	if err := core.CheckAssignment(in, flows, coreRes.MaxFlow); err != nil {
		return nil, fmt.Errorf("portfolio: lifted flow failed verification: %w", err)
	}
	if err := core.WriteEngineState(fs, in, opts, coreRes.Rounds, flows); err != nil {
		return nil, err
	}
	if !opts.KeepIntermediate {
		fs.DeletePrefix(coreOpts.PathPrefix)
	}

	res := &core.Result{
		Variant:         coreRes.Variant,
		MaxFlow:         coreRes.MaxFlow,
		Rounds:          coreRes.Rounds,
		Converged:       coreRes.Converged,
		RoundStats:      coreRes.RoundStats,
		TotalSimTime:    coreRes.TotalSimTime + probe.BFSSimTime,
		TotalWallTime:   time.Since(start),
		InputGraphBytes: coreRes.InputGraphBytes,
		MaxGraphBytes:   coreRes.MaxGraphBytes,
		RunSpan:         coreRes.RunSpan,
	}
	log.Info("portfolio done",
		"max_flow", res.MaxFlow,
		"rounds", res.Rounds,
		"engine", dec.Engine,
		"reduced", true,
		"wall", res.TotalWallTime)
	return res, nil
}
