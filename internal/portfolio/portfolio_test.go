package portfolio

import (
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
)

func testCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

func dinicValue(t *testing.T, in *graph.Input) int64 {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	return maxflow.Dinic(net, int(in.Source), int(in.Sink))
}

func probe(t *testing.T, in *graph.Input) *Probe {
	t.Helper()
	cluster := testCluster(3)
	p, err := ProbeInstance(cluster, in, 0, "probe/", false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestChoosePerFamily(t *testing.T) {
	t.Run("watts-strogatz-ffmr", func(t *testing.T) {
		base, err := graphgen.WattsStrogatz(300, 4, 0.1, 21)
		if err != nil {
			t.Fatal(err)
		}
		in, err := graphgen.AttachSuperSourceSink(base, 3, 3, 22)
		if err != nil {
			t.Fatal(err)
		}
		d := Choose(probe(t, in))
		if d.Engine != "ffmr" || d.Reduce {
			t.Fatalf("WS should run plain FFMR, got %+v", d)
		}
	})
	t.Run("barabasi-albert-reduce", func(t *testing.T) {
		base, err := graphgen.BarabasiAlbert(800, 2, 23)
		if err != nil {
			t.Fatal(err)
		}
		in, err := graphgen.AttachSuperSourceSink(base, 4, 4, 24)
		if err != nil {
			t.Fatal(err)
		}
		d := Choose(probe(t, in))
		if d.Engine != "ffmr" || !d.Reduce {
			t.Fatalf("BA(m=2) should run core-reduced FFMR, got %+v", d)
		}
	})
	t.Run("grid-prflow", func(t *testing.T) {
		in, err := graphgen.Grid(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		p := probe(t, in)
		if p.DiameterEstimate < 30 {
			t.Fatalf("16x16 grid diameter estimate %d, want 30", p.DiameterEstimate)
		}
		d := Choose(p)
		if d.Engine != "prflow" {
			t.Fatalf("grid should choose prflow, got %+v", d)
		}
	})
	t.Run("bipartite-ffmr", func(t *testing.T) {
		in, err := graphgen.DenseBipartite(30, 30, 0.4, 25)
		if err != nil {
			t.Fatal(err)
		}
		d := Choose(probe(t, in))
		if d.Engine != "prflow" && d.Engine != "ffmr" {
			t.Fatalf("unexpected engine %q", d.Engine)
		}
		if d.Engine != "ffmr" {
			t.Fatalf("diameter-3 bipartite should stay on ffmr, got %+v", d)
		}
	})
}

// TestAutoEndToEnd runs the full auto engine on each family and checks
// value parity with Dinic plus validity of the persisted state.
func TestAutoEndToEnd(t *testing.T) {
	families := []struct {
		name string
		in   func(t *testing.T) *graph.Input
	}{
		{"ws", func(t *testing.T) *graph.Input {
			base, err := graphgen.WattsStrogatz(120, 4, 0.2, 31)
			if err != nil {
				t.Fatal(err)
			}
			in, err := graphgen.AttachSuperSourceSink(base, 3, 3, 32)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 15, 33)
			return in
		}},
		{"ba-reduced", func(t *testing.T) *graph.Input {
			base, err := graphgen.BarabasiAlbert(200, 2, 34)
			if err != nil {
				t.Fatal(err)
			}
			in, err := graphgen.AttachSuperSourceSink(base, 3, 3, 35)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 15, 36)
			return in
		}},
		{"grid-prflow", func(t *testing.T) *graph.Input {
			in, err := graphgen.Grid(12, 12)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 9, 37)
			return in
		}},
		{"bipartite", func(t *testing.T) *graph.Input {
			in, err := graphgen.DenseBipartite(20, 25, 0.3, 38)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 7, 39)
			return in
		}},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			in := fam.in(t)
			want := dinicValue(t, in)
			cluster := testCluster(3)
			opts := core.Options{Engine: EngineName, KeepIntermediate: true}
			res, err := core.Run(cluster, in, opts)
			if err != nil {
				t.Fatalf("auto run: %v", err)
			}
			if res.MaxFlow != want {
				t.Fatalf("auto max flow = %d, Dinic = %d", res.MaxFlow, want)
			}
			resolved := opts.WithDefaults(cluster.Nodes * cluster.SlotsPerNode)
			if err := core.Validate(cluster.FS, in, resolved, res); err != nil {
				t.Fatalf("persisted state invalid: %v", err)
			}
		})
	}
}
