// Package leakcheck provides a tiny goroutine-leak assertion for tests:
// snapshot the goroutine count at the start, and verify at the end that
// it returned to (at most) the starting level, with a grace period for
// goroutines that are mid-shutdown when the test body finishes.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a function to
// defer: it fails the test if, after a ~2s retry window, more goroutines
// are alive than at the snapshot. Usage:
//
//	defer leakcheck.Check(t)()
func Check(tb testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		var after int
		deadline := time.Now().Add(2 * time.Second)
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			tb.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	}
}
