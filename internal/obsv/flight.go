package obsv

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightSize is the flight recorder's ring capacity when
// Options.FlightSize is unset.
const DefaultFlightSize = 256

// FlightEvent is one recorded event: a log record or a direct Note.
type FlightEvent struct {
	T     time.Time      `json:"t"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`

	// Source is filled in when dumps from several recorders are merged
	// into one post-mortem timeline; the recorder does not store it per
	// event.
	Source string `json:"-"`
}

// FlightRecorder keeps the last N events in a ring buffer — the
// airplane-style black box of a worker. Recording is cheap (one mutex,
// no I/O); the ring only touches disk when Dump flushes it after a
// crash. All methods are safe for concurrent use and on nil receivers,
// so an unconfigured component carries a nil recorder at no cost.
type FlightRecorder struct {
	mu     sync.Mutex
	buf    []FlightEvent
	next   int // ring write cursor
	filled bool
	seen   atomic.Int64

	source atomic.Pointer[string]
}

// NewFlightRecorder creates a recorder holding up to size events
// (DefaultFlightSize when size <= 0). source names the component in
// dumps ("worker-3", "master"); it can be refined later with SetSource
// once an identity is assigned.
func NewFlightRecorder(source string, size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	f := &FlightRecorder{buf: make([]FlightEvent, size)}
	f.source.Store(&source)
	return f
}

// SetSource renames the recorder (workers learn their master-assigned
// ID only after registration).
func (f *FlightRecorder) SetSource(source string) {
	if f == nil {
		return
	}
	f.source.Store(&source)
}

// Source returns the recorder's current source name ("" on nil).
func (f *FlightRecorder) Source() string {
	if f == nil {
		return ""
	}
	return *f.source.Load()
}

// Note records one event directly, outside the logging pipeline. kv are
// alternating key/value pairs, slog-style.
func (f *FlightRecorder) Note(level slog.Level, msg string, kv ...any) {
	if f == nil {
		return
	}
	var attrs map[string]any
	if len(kv) > 0 {
		attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[fmt.Sprint(kv[i])] = kv[i+1]
		}
	}
	f.record(FlightEvent{T: time.Now(), Level: level.String(), Msg: msg, Attrs: attrs})
}

func (f *FlightRecorder) record(ev FlightEvent) {
	if f == nil {
		return
	}
	f.seen.Add(1)
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.filled = true
	}
	f.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.filled {
		return len(f.buf)
	}
	return f.next
}

// Seen reports how many events were ever recorded (including those the
// ring has since overwritten).
func (f *FlightRecorder) Seen() int64 {
	if f == nil {
		return 0
	}
	return f.seen.Load()
}

// Events returns the ring's contents in chronological order.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.filled {
		return append([]FlightEvent(nil), f.buf[:f.next]...)
	}
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// dumpHeader is the first line of a dump file.
type dumpHeader struct {
	Source   string    `json:"source"`
	Reason   string    `json:"reason"`
	DumpedAt time.Time `json:"dumped_at"`
	Seen     int64     `json:"events_seen"`
}

// WriteDump writes the ring as JSON lines: one header line identifying
// the source, then one line per event, oldest first. Safe on nil
// (writes an empty header).
func (f *FlightRecorder) WriteDump(w io.Writer) error {
	return f.writeDump(w, "live")
}

func (f *FlightRecorder) writeDump(w io.Writer, reason string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(dumpHeader{Source: f.Source(), Reason: reason, DumpedAt: time.Now(), Seen: f.Seen()}); err != nil {
		return err
	}
	for _, ev := range f.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump flushes the ring into dir as a uniquely named JSONL file and
// returns its path. reason says why ("crash", "shutdown"); it lands in
// the dump header and the post-mortem rendering. Dumping a nil recorder
// is a no-op returning "".
func (f *FlightRecorder) Dump(dir, reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%d.jsonl", sanitizeFileName(f.Source()), time.Now().UnixNano())
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.writeDump(file, reason); err != nil {
		file.Close()
		return "", err
	}
	if err := file.Close(); err != nil {
		return "", err
	}
	return path, nil
}

func sanitizeFileName(s string) string {
	out := []byte(s)
	for i, c := range out {
		alnum := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' || c == '_'
		if !alnum {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}

// Handler returns a slog.Handler that records every log record into the
// ring and then forwards it to next (the component's real log output).
// This is how a worker's structured log doubles as its flight recorder:
// one logging call feeds both. A nil recorder returns next unchanged;
// a nil next records only.
func (f *FlightRecorder) Handler(next slog.Handler) slog.Handler {
	if next == nil {
		next = nopHandler{}
	}
	if f == nil {
		return next
	}
	return &flightHandler{f: f, next: next}
}

// flightHandler tees log records into a FlightRecorder. It tracks the
// attrs and group prefix accumulated by With/WithGroup so recorded
// events carry the same contextual fields the forwarded records do.
type flightHandler struct {
	f     *FlightRecorder
	next  slog.Handler
	attrs []slog.Attr
	group string // dotted group prefix for subsequent attrs
}

// Enabled always records: the flight recorder must keep the full recent
// event stream even when the forwarding handler filters by level.
func (h *flightHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *flightHandler) Handle(ctx context.Context, r slog.Record) error {
	attrs := make(map[string]any, len(h.attrs)+r.NumAttrs())
	for _, a := range h.attrs {
		flattenAttr(attrs, "", a)
	}
	r.Attrs(func(a slog.Attr) bool {
		flattenAttr(attrs, h.group, a)
		return true
	})
	if len(attrs) == 0 {
		attrs = nil
	}
	h.f.record(FlightEvent{T: r.Time, Level: r.Level.String(), Msg: r.Message, Attrs: attrs})
	if h.next.Enabled(ctx, r.Level) {
		return h.next.Handle(ctx, r)
	}
	return nil
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + a.Key
		}
		na = append(na, a)
	}
	return &flightHandler{f: h.f, next: h.next.WithAttrs(attrs), attrs: na, group: h.group}
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	return &flightHandler{f: h.f, next: h.next.WithGroup(name), attrs: h.attrs, group: h.group + name + "."}
}

// flattenAttr resolves one attr into the flat map, joining group names
// with dots (JSON-friendly, and good enough for a crash timeline).
func flattenAttr(dst map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix + a.Key + "."
		if a.Key == "" {
			p = prefix
		}
		for _, ga := range v.Group() {
			flattenAttr(dst, p, ga)
		}
		return
	}
	dst[prefix+a.Key] = v.Any()
}
