package obsv

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ffmr/internal/leakcheck"
	"ffmr/internal/trace"
)

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"spills":                     "ffmr_spills",
		"spilled bytes":              "ffmr_spilled_bytes",
		"distmr workers alive":       "ffmr_distmr_workers_alive",
		"MR jobs":                    "ffmr_mr_jobs",
		"weird--name  !! 9":          "ffmr_weird_name_9",
		"":                           "ffmr",
		"aug_proc queue depth (max)": "ffmr_aug_proc_queue_depth_max",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteParseMetricsRoundtrip(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Counter("map tasks").Add(12)
	reg.Counter("reduce tasks").Add(4)
	reg.Counter("spilled bytes").Add(1 << 20)
	reg.Gauge("distmr workers alive").Set(3)
	reg.Gauge("distmr workers alive").Set(2)

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, reg); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	got, err := ParseMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	want := map[string]int64{
		"ffmr_map_tasks_total":          12,
		"ffmr_reduce_tasks_total":       4,
		"ffmr_spilled_bytes_total":      1 << 20,
		"ffmr_distmr_workers_alive":     2,
		"ffmr_distmr_workers_alive_max": 3,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics, want %d: %v", len(got), len(want), got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

func TestWriteMetricsNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, nil); err != nil {
		t.Fatalf("WriteMetrics(nil): %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q, want empty", buf.String())
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	reg := trace.NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Counter(fmt.Sprintf("counter %d", i)).Add(int64(i))
	}
	var a, b bytes.Buffer
	if err := WriteMetrics(&a, reg); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b, reg); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of an idle registry differ")
	}
}

func TestOrAndNop(t *testing.T) {
	if Or(nil) != Nop() {
		t.Fatal("Or(nil) did not return the shared nop logger")
	}
	l := NewLogger(io.Discard, "text", slog.LevelInfo)
	if Or(l) != l {
		t.Fatal("Or(l) did not return l")
	}
	// The nop logger must be safe and must report disabled.
	Nop().Info("dropped", "k", "v")
	if Nop().Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder("w1", 4)
	for i := 0; i < 10; i++ {
		f.Note(slog.LevelInfo, fmt.Sprintf("event %d", i), "i", i)
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", f.Seen())
	}
	evs := f.Events()
	for i, ev := range evs {
		want := fmt.Sprintf("event %d", 6+i)
		if ev.Msg != want {
			t.Errorf("event[%d].Msg = %q, want %q", i, ev.Msg, want)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Note(slog.LevelInfo, "dropped")
	f.SetSource("x")
	if f.Len() != 0 || f.Seen() != 0 || f.Events() != nil || f.Source() != "" {
		t.Fatal("nil recorder not inert")
	}
	if path, err := f.Dump(t.TempDir(), "crash"); err != nil || path != "" {
		t.Fatalf("nil Dump = (%q, %v), want empty no-op", path, err)
	}
	var buf bytes.Buffer
	if err := f.WriteDump(&buf); err != nil {
		t.Fatalf("nil WriteDump: %v", err)
	}
	// Logging through a nil recorder's handler must still reach next.
	var out bytes.Buffer
	l := slog.New(f.Handler(slog.NewTextHandler(&out, nil)))
	l.Info("hello")
	if !strings.Contains(out.String(), "hello") {
		t.Fatal("nil recorder handler dropped the record")
	}
}

func TestFlightHandlerTee(t *testing.T) {
	f := NewFlightRecorder("master", 16)
	var out bytes.Buffer
	// Forwarding handler filters at WARN; the ring must still see INFO.
	next := slog.NewTextHandler(&out, &slog.HandlerOptions{Level: slog.LevelWarn})
	l := slog.New(f.Handler(next)).With("worker", 3)
	l.Info("assign", "task", 7)
	l.WithGroup("lease").Warn("expired", "deadline", "t0")

	if strings.Contains(out.String(), "assign") {
		t.Fatal("filtered INFO record reached the forwarding handler")
	}
	if !strings.Contains(out.String(), "expired") {
		t.Fatal("WARN record did not reach the forwarding handler")
	}
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(evs))
	}
	if evs[0].Msg != "assign" || evs[0].Attrs["worker"] != int64(3) || evs[0].Attrs["task"] != int64(7) {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Msg != "expired" || evs[1].Attrs["lease.deadline"] != "t0" {
		t.Errorf("second event = %+v", evs[1])
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder("w", 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Note(slog.LevelInfo, "e", "g", g, "i", i)
				if i%50 == 0 {
					f.Events()
					f.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Seen() != 8*200 {
		t.Fatalf("Seen = %d, want %d", f.Seen(), 8*200)
	}
}

func TestDumpAndPostmortem(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	w1 := NewFlightRecorder("worker-1", 8)
	w1.record(FlightEvent{T: base, Level: "INFO", Msg: "task start", Attrs: map[string]any{"task": 1}})
	w1.record(FlightEvent{T: base.Add(3 * time.Second), Level: "ERROR", Msg: "injected crash"})
	w2 := NewFlightRecorder("worker-2", 8)
	w2.record(FlightEvent{T: base.Add(time.Second), Level: "INFO", Msg: "task start", Attrs: map[string]any{"task": 2}})

	if _, err := w1.Dump(dir, "crash"); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Dump(dir, "shutdown"); err != nil {
		t.Fatal(err)
	}

	dumps, err := ReadDumpDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("read %d dumps, want 2", len(dumps))
	}
	var buf bytes.Buffer
	if err := RenderPostmortem(&buf, dumps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 flight dump(s)", "worker-1", "worker-2", "reason=crash",
		"merged timeline:", "injected crash", "task=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
	// The merged timeline must interleave by time: worker-2's event at
	// +1s lands between worker-1's events at +0s and +3s.
	i1 := strings.Index(out, "task=1")
	i2 := strings.Index(out, "task=2")
	ic := strings.Index(out, "injected crash")
	if !(i1 < i2 && i2 < ic) {
		t.Errorf("timeline not time-ordered: task=1@%d task=2@%d crash@%d", i1, i2, ic)
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight-bad-1.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDump(path); err == nil {
		t.Fatal("ReadDump accepted garbage")
	}
}

func TestRenderPostmortemEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderPostmortem(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no flight dumps") {
		t.Fatalf("empty render = %q", buf.String())
	}
}

func TestAdminEndpoints(t *testing.T) {
	defer leakcheck.Check(t)()

	reg := trace.NewRegistry()
	reg.Counter("map tasks").Add(7)
	flight := NewFlightRecorder("master", 8)
	flight.Note(slog.LevelInfo, "round start", "round", 1)
	status := &ClusterStatus{
		Role: "master", WorkersAlive: 2,
		Workers: []WorkerStatus{{ID: 1, Addr: "w1", Running: 1}, {ID: 2, Addr: "w2"}},
		Job:     &JobStatus{Name: "ff5", Round: 3, Maps: 8, MapsDone: 5, Reduces: 4, InFlight: 3},
	}
	a, err := StartAdmin(AdminConfig{
		Metrics: func() *trace.Registry { return reg },
		Status:  func() *ClusterStatus { return status },
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(a.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics = %d", code)
	}
	parsed, err := ParseMetrics(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics unparseable: %v\n%s", err, body)
	}
	if parsed["ffmr_map_tasks_total"] != 7 {
		t.Errorf("/metrics map tasks = %d, want 7", parsed["ffmr_map_tasks_total"])
	}
	// A counter bumped after the first scrape must show on the next one.
	reg.Counter("map tasks").Add(3)
	if _, body := get("/metrics"); !strings.Contains(body, "ffmr_map_tasks_total 10") {
		t.Errorf("second scrape did not see live counter:\n%s", body)
	}
	if code, body := get("/status"); code != http.StatusOK ||
		!strings.Contains(body, `"name": "ff5"`) || !strings.Contains(body, `"workers_alive": 2`) {
		t.Errorf("/status = %d %q", code, body)
	}
	if code, body := get("/flight"); code != http.StatusOK || !strings.Contains(body, "round start") {
		t.Errorf("/flight = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestAdminCloseIdempotentAndLeakFree(t *testing.T) {
	defer leakcheck.Check(t)()
	a, err := StartAdmin(AdminConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == "" {
		t.Fatal("admin has no address")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a.Close() // second close must not panic
	var nilAdmin *Admin
	if nilAdmin.Addr() != "" || nilAdmin.URL() != "" || nilAdmin.Close() != nil {
		t.Fatal("nil Admin not inert")
	}
}

func TestDashboardRender(t *testing.T) {
	snap := DashSnapshot{
		Title:   "ff5 on fb3",
		Elapsed: 2500 * time.Millisecond,
		Counters: map[string]int64{
			"map tasks":                  40,
			"distmr worker deaths":       1,
			"distmr reassignments":       2,
			"distmr speculative backups": 1,
		},
		Gauges: map[string]trace.GaugeValue{"distmr workers alive": {Last: 2, Max: 3}},
		Status: &ClusterStatus{
			Role: "master", WorkersAlive: 2,
			Workers: []WorkerStatus{
				{ID: 2, Addr: "127.0.0.1:9002", TasksDone: 11},
				{ID: 1, Addr: "127.0.0.1:9001", Dead: true},
			},
			Job: &JobStatus{Name: "ffmr-round", Round: 4, Maps: 10, MapsDone: 5, Reduces: 4, ReducesDone: 0, InFlight: 5},
		},
	}
	var buf bytes.Buffer
	RenderDash(&buf, snap)
	out := buf.String()
	for _, want := range []string{
		"ff5 on fb3", "round 4", "5/10 [#####.....]", "workers alive 2/2",
		"[x] w1", "faults: deaths 1  reassigns 2  backups 1",
		"distmr workers alive", "(max 3)", "map tasks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard frame missing %q:\n%s", want, out)
		}
	}
	// Workers sorted by ID regardless of input order.
	if i1, i2 := strings.Index(out, "w1"), strings.Index(out, "w2"); i1 > i2 {
		t.Error("workers not sorted by ID")
	}
}

func TestDashboardLoop(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := trace.NewRegistry()
	reg.Counter("rounds").Add(1)
	var mu sync.Mutex
	var buf bytes.Buffer
	d := StartDashboard(DashConfig{
		Out:      writerFunc(func(p []byte) (int, error) { mu.Lock(); defer mu.Unlock(); return buf.Write(p) }),
		Interval: 5 * time.Millisecond,
		Metrics:  func() *trace.Registry { return reg },
		Title:    "loop test",
	})
	time.Sleep(30 * time.Millisecond)
	d.Close()
	d.Close() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "loop test") || !strings.Contains(out, "rounds") {
		t.Fatalf("dashboard loop produced no frames:\n%s", out)
	}
	if !strings.Contains(out, "[done,") {
		t.Fatalf("final frame not marked done:\n%s", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestWriteMetricsWhileRegistryMutates scrapes the Prometheus rendering
// concurrently with counter and gauge writes — exactly what an admin
// /metrics poll does to a registry mid-job. Run under -race.
func TestWriteMetricsWhileRegistryMutates(t *testing.T) {
	reg := trace.NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("writer %d ops", w))
			g := reg.Gauge("queue depth")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(int64(i % 100))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, reg); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if _, err := ParseMetrics(&buf); err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
