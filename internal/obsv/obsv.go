// Package obsv is the live observability layer of the FFMR repo: where
// internal/trace records what a run *did* (spans and counters exported
// after completion), obsv shows what the system is doing *right now*,
// the role Hadoop's live counters and job UI played for the paper's
// measurements.
//
// It provides four pieces, all optional and all off in the zero state:
//
//   - structured logging: log/slog loggers with contextual fields
//     (run/round/job/task/worker/exec) threaded through the engines, with
//     a shared no-op logger so instrumented code never nil-checks;
//   - an admin HTTP server exposing /metrics (Prometheus text exposition
//     backed by the live trace.Registry), /healthz, /status (JSON view
//     of workers, leases and job progress) and /debug/pprof;
//   - a terminal dashboard (the -watch flag) rendering round progress,
//     counters and scheduler decisions as they happen;
//   - a flight recorder: a bounded ring of recent events per worker,
//     flushed to disk on a crash and rendered into a merged post-mortem
//     timeline by RenderPostmortem (cmd/ffmr -postmortem).
//
// The package depends only on the standard library and internal/trace.
// Every entry point tolerates its zero value: a nil *slog.Logger becomes
// the no-op logger via Or, a nil *FlightRecorder records nothing, and an
// empty Options starts no servers, so the instrumented hot paths cost
// one predictable branch when observability is disabled.
package obsv

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Options bundles the observability configuration a component receives.
// The zero value disables everything at no hot-path cost.
type Options struct {
	// Logger receives structured log records (nil: logging off; use Or
	// to obtain the shared no-op logger).
	Logger *slog.Logger
	// AdminAddr, when non-empty, serves /metrics, /healthz, /status and
	// /debug/pprof on that address ("127.0.0.1:0" for an ephemeral port).
	AdminAddr string
	// FlightDir, when non-empty, arms a flight recorder whose ring is
	// flushed into this directory when the component crashes.
	FlightDir string
	// FlightSize bounds the flight recorder ring (default 256 events).
	FlightSize int
}

// Enabled reports whether any observability feature is configured.
func (o *Options) Enabled() bool {
	return o.Logger != nil || o.AdminAddr != "" || o.FlightDir != ""
}

// nopHandler is a slog.Handler that drops everything. Enabled returns
// false, so argument formatting is skipped entirely on the no-op path.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// Nop returns the shared no-op logger.
func Nop() *slog.Logger { return nopLogger }

// Or returns l, or the shared no-op logger when l is nil. Components
// resolve their configured logger once through Or and then log
// unconditionally; with logging off the no-op handler's Enabled short-
// circuits before any argument is formatted.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// NewLogger builds a logger writing to w in the given format ("text" or
// "json") at the given minimum level. An unknown format falls back to
// text. Timestamps are kept: live logs are for operators, and the
// post-mortem timeline needs them to merge sources.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a -log-level flag value to a slog.Level (debug, info,
// warn, error; defaults to info for unknown strings).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
