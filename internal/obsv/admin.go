package obsv

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"

	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// AdminConfig configures an admin HTTP server.
type AdminConfig struct {
	// Addr is the listen address (default 127.0.0.1:0).
	Addr string
	// Metrics supplies the registry /metrics is rendered from on every
	// scrape. A func rather than a value because the distributed master
	// swaps registries when a job installs the cluster's tracer. Nil (or
	// returning nil) serves an empty exposition.
	Metrics func() *trace.Registry
	// Status supplies the /status payload (nil: an empty object).
	Status func() *ClusterStatus
	// Flight, when non-nil, is served on /flight as the current ring
	// contents — the live view of what a crash dump would contain.
	Flight *FlightRecorder
	// Logger logs serve errors (nil: silent).
	Logger *slog.Logger
}

// Admin is a running admin HTTP server. Create with StartAdmin; Close
// shuts it down and releases every connection.
type Admin struct {
	srv *rpcutil.HTTPServer
}

// StartAdmin binds the admin address and serves the observability
// endpoints: /metrics, /healthz, /status, /flight and /debug/pprof/*.
// The server lifecycle (bind-before-return, header timeouts, graceful
// drain then hard close) is the shared rpcutil HTTP harness.
func StartAdmin(cfg AdminConfig) (*Admin, error) {
	log := Or(cfg.Logger)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var reg *trace.Registry
		if cfg.Metrics != nil {
			reg = cfg.Metrics()
		}
		if err := WriteMetrics(w, reg); err != nil {
			log.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		st := &ClusterStatus{}
		if cfg.Status != nil {
			if s := cfg.Status(); s != nil {
				st = s
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Warn("status write failed", "err", err)
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := cfg.Flight.WriteDump(w); err != nil {
			log.Warn("flight write failed", "err", err)
		}
	})
	// The pprof handlers, on the explicit mux (the server must not use
	// http.DefaultServeMux, which other packages can pollute). Index
	// dispatches /debug/pprof/<profile> for the named runtime profiles.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv, err := rpcutil.ServeHTTP(rpcutil.HTTPConfig{
		Addr:    cfg.Addr,
		Handler: mux,
		Logger:  cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("obsv: admin server: %w", err)
	}
	return &Admin{srv: srv}, nil
}

// Addr returns the server's bound address (for curl and tests).
func (a *Admin) Addr() string {
	if a == nil {
		return ""
	}
	return a.srv.Addr()
}

// URL returns the server's base URL ("http://host:port").
func (a *Admin) URL() string {
	if a == nil {
		return ""
	}
	return a.srv.URL()
}

// Close shuts the server down: a short graceful drain for in-flight
// scrapes, then a hard close so no goroutine or connection outlives the
// owner (the leak checks depend on this).
func (a *Admin) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
