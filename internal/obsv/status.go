package obsv

// The /status JSON schema. obsv owns these types so the admin server,
// the dashboard and the distributed master (which produces them) agree
// without an import cycle: distmr imports obsv, never the reverse.

// ClusterStatus is a point-in-time view of a master and its workers,
// served as JSON on /status and rendered by the watch dashboard.
type ClusterStatus struct {
	// Role is "master" or "worker"; Addr is the component's RPC address.
	Role string `json:"role"`
	Addr string `json:"addr,omitempty"`
	// WorkersAlive counts live registered workers (master only).
	WorkersAlive int `json:"workers_alive"`
	// Workers lists every registered worker, dead ones included.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Job is the currently running job, nil between jobs.
	Job *JobStatus `json:"job,omitempty"`
	// Hints is the master's autoscaling signal (master only).
	Hints *ScalingHints `json:"hints,omitempty"`
}

// ScalingHints is the master's published autoscaling signal: enough for
// an external supervisor to decide whether the cluster wants more
// workers (deep queue) or fewer (idle), without scraping internals.
type ScalingHints struct {
	// QueueDepth counts runnable tasks waiting for a worker slot;
	// InFlight counts leased tasks currently executing.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// WorkersLive counts schedulable workers; WorkersDraining counts
	// workers finishing up before retirement.
	WorkersLive     int `json:"workers_live"`
	WorkersDraining int `json:"workers_draining"`
	// StragglerRatio is speculative backups launched per completed task —
	// a high ratio means slow nodes are dragging rounds out.
	StragglerRatio float64 `json:"straggler_ratio"`
}

// WorkerStatus is the master's live view of one registered worker.
type WorkerStatus struct {
	ID   uint64 `json:"id"`
	Addr string `json:"addr"`
	// Running is the worker's self-reported in-flight task count;
	// TasksDone its completed-task total — both piggybacked on the most
	// recent heartbeat.
	Running   int64 `json:"running"`
	TasksDone int64 `json:"tasks_done"`
	// StoreBytes is the worker's local segment store footprint.
	StoreBytes int64 `json:"store_bytes"`
	// LastBeatMS is milliseconds since the last heartbeat arrived.
	LastBeatMS int64 `json:"last_beat_ms"`
	// State is the membership state: "live", "draining", "drained" or
	// "dead". Dead stays as the coarse boolean for old consumers.
	State string `json:"state,omitempty"`
	Dead  bool   `json:"dead,omitempty"`
}

// JobStatus is the scheduler's live view of the running job.
type JobStatus struct {
	Name  string `json:"name"`
	Round int    `json:"round"`
	// Maps/Reduces are task totals; the Done fields count winners so far.
	Maps        int `json:"maps"`
	MapsDone    int `json:"maps_done"`
	Reduces     int `json:"reduces"`
	ReducesDone int `json:"reduces_done"`
	// InFlight counts outstanding leases; Queued counts runnable tasks
	// still waiting for a slot; Parked counts reduces waiting for lost
	// map outputs to be re-created.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued,omitempty"`
	Parked   int `json:"parked,omitempty"`
}
