package obsv

// The /status JSON schema. obsv owns these types so the admin server,
// the dashboard and the distributed master (which produces them) agree
// without an import cycle: distmr imports obsv, never the reverse.

// ClusterStatus is a point-in-time view of a master and its workers,
// served as JSON on /status and rendered by the watch dashboard.
type ClusterStatus struct {
	// Role is "master" or "worker"; Addr is the component's RPC address.
	Role string `json:"role"`
	Addr string `json:"addr,omitempty"`
	// WorkersAlive counts live registered workers (master only).
	WorkersAlive int `json:"workers_alive"`
	// Workers lists every registered worker, dead ones included.
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Job is the currently running job, nil between jobs.
	Job *JobStatus `json:"job,omitempty"`
	// Hints is the master's autoscaling signal (master only).
	Hints *ScalingHints `json:"hints,omitempty"`
	// Service is the resident flow service's section (Role "service"): the
	// scheduler's per-tenant queues and the resident snapshot handles.
	Service *ServiceStatus `json:"service,omitempty"`
}

// ServiceStatus is a point-in-time view of the resident flow service,
// published under ClusterStatus.Service by the service's admin server.
// Like JobStatus it is assembled as an immutable snapshot and handed
// over whole, so scrapes never read scheduler internals.
type ServiceStatus struct {
	// Queued/Running/Done/Failed are service-wide job totals;
	// MaxConcurrent is the scheduler's global running bound.
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	MaxConcurrent int `json:"max_concurrent"`
	// Tenants breaks the totals down per tenant (the queue-depth signal
	// an operator or autoscaler watches), sorted by tenant ID.
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// Handles lists the resident solved snapshots the query API serves.
	Handles []HandleStatus `json:"handles,omitempty"`
}

// TenantStatus is one tenant's scheduler accounting.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	// Queued counts admitted jobs waiting for dispatch (bounded by
	// QuotaQueued); Running counts dispatched jobs (bounded by
	// QuotaRunning); Done/Failed are lifetime completion totals.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// QuotaQueued and QuotaRunning are the admission and fair-share
	// bounds in force for this tenant.
	QuotaQueued  int `json:"quota_queued"`
	QuotaRunning int `json:"quota_running"`
	// VTime is the tenant's weighted fair-queueing virtual time; the
	// dispatcher always serves the eligible tenant with the lowest.
	VTime float64 `json:"vtime"`
	// Submit-to-done latency percentiles (nanoseconds) over this
	// tenant's completed jobs, from the service's per-tenant histogram.
	SubmitP50NS int64 `json:"submit_p50_ns,omitempty"`
	SubmitP95NS int64 `json:"submit_p95_ns,omitempty"`
	SubmitP99NS int64 `json:"submit_p99_ns,omitempty"`
	// Query latency percentiles (nanoseconds) over this tenant's
	// snapshot queries.
	QueryP50NS int64 `json:"query_p50_ns,omitempty"`
	QueryP95NS int64 `json:"query_p95_ns,omitempty"`
	QueryP99NS int64 `json:"query_p99_ns,omitempty"`
}

// HandleStatus describes one resident snapshot the query API serves.
type HandleStatus struct {
	Handle string `json:"handle"`
	Tenant string `json:"tenant"`
	// Gen is the store's monotonic generation; every query answer about
	// this handle is tagged with the generation it was served from.
	Gen int64 `json:"gen"`
	// Flow is the generation's maximum-flow value; Vertices/Edges size
	// its graph.
	Flow     int64 `json:"flow"`
	Vertices int   `json:"vertices"`
	Edges    int   `json:"edges"`
}

// ScalingHints is the master's published autoscaling signal: enough for
// an external supervisor to decide whether the cluster wants more
// workers (deep queue) or fewer (idle), without scraping internals.
type ScalingHints struct {
	// QueueDepth counts runnable tasks waiting for a worker slot;
	// InFlight counts leased tasks currently executing.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// WorkersLive counts schedulable workers; WorkersDraining counts
	// workers finishing up before retirement.
	WorkersLive     int `json:"workers_live"`
	WorkersDraining int `json:"workers_draining"`
	// StragglerRatio is speculative backups launched per completed task —
	// a high ratio means slow nodes are dragging rounds out.
	StragglerRatio float64 `json:"straggler_ratio"`
	// QueueWaitP95NS is the 95th-percentile scheduler queue wait
	// (enqueue to dispatch) in nanoseconds, from the master's queue-wait
	// histogram. A growing p95 with live workers means the cluster is
	// under-provisioned.
	QueueWaitP95NS int64 `json:"queue_wait_p95_ns,omitempty"`
	// IdleFraction estimates the running job's critical-path idle share:
	// 1 - (sum of winning task execution time) / (live workers x job
	// elapsed), clamped to [0,1]. High idle with a shallow queue means
	// the cluster could shrink; the offline analyzer computes the exact
	// per-round counterpart from the stitched trace.
	IdleFraction float64 `json:"idle_fraction,omitempty"`
}

// WorkerStatus is the master's live view of one registered worker.
type WorkerStatus struct {
	ID   uint64 `json:"id"`
	Addr string `json:"addr"`
	// Running is the worker's self-reported in-flight task count;
	// TasksDone its completed-task total — both piggybacked on the most
	// recent heartbeat.
	Running   int64 `json:"running"`
	TasksDone int64 `json:"tasks_done"`
	// StoreBytes is the worker's local segment store footprint.
	StoreBytes int64 `json:"store_bytes"`
	// Prefetched counts shuffle segments this worker pulled ahead of
	// reduce dispatch (pipelined shuffle), piggybacked on heartbeats.
	Prefetched int64 `json:"prefetched,omitempty"`
	// LastBeatMS is milliseconds since the last heartbeat arrived.
	LastBeatMS int64 `json:"last_beat_ms"`
	// State is the membership state: "live", "draining", "drained" or
	// "dead". Dead stays as the coarse boolean for old consumers.
	State string `json:"state,omitempty"`
	Dead  bool   `json:"dead,omitempty"`
}

// JobStatus is the scheduler's live view of the running job.
type JobStatus struct {
	Name  string `json:"name"`
	Round int    `json:"round"`
	// Maps/Reduces are task totals; the Done fields count winners so far.
	Maps        int `json:"maps"`
	MapsDone    int `json:"maps_done"`
	Reduces     int `json:"reduces"`
	ReducesDone int `json:"reduces_done"`
	// InFlight counts outstanding leases; Queued counts runnable tasks
	// still waiting for a slot; Parked counts reduces waiting for lost
	// map outputs to be re-created.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued,omitempty"`
	Parked   int `json:"parked,omitempty"`
}
