package obsv

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"ffmr/internal/trace"
)

// The -watch dashboard: a ticker goroutine polls the live sources (the
// trace registry, and in distributed mode the master's status snapshot)
// and redraws an ASCII view of round progress, counters and scheduler
// decisions. The sources are the same ones /metrics and /status serve,
// so the dashboard works identically against the simulated engine and
// the TCP cluster.

// DashConfig configures a watch dashboard.
type DashConfig struct {
	// Out receives the frames (default os.Stdout).
	Out io.Writer
	// Interval is the redraw period (default 500ms).
	Interval time.Duration
	// Metrics supplies the registry rendered into the counter/gauge
	// panels each frame; Status, when set, supplies the cluster panel.
	Metrics func() *trace.Registry
	Status  func() *ClusterStatus
	// Title heads every frame ("ff5 on fb3", "distributed run", ...).
	Title string
	// ANSI redraws frames in place with terminal escape codes; without
	// it frames are appended, which is what a piped log wants.
	ANSI bool
}

// Dashboard is a running watch loop. Close stops it and draws one final
// frame so the terminal ends on the completed state.
type Dashboard struct {
	cfg   DashConfig
	start time.Time
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// StartDashboard launches the redraw loop. Closing the returned
// Dashboard is the only way to stop it.
func StartDashboard(cfg DashConfig) *Dashboard {
	if cfg.Out == nil {
		cfg.Out = os.Stdout
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	d := &Dashboard{cfg: cfg, start: time.Now(), stop: make(chan struct{}), done: make(chan struct{})}
	go d.loop()
	return d
}

func (d *Dashboard) loop() {
	defer close(d.done)
	tick := time.NewTicker(d.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			d.draw(false)
		case <-d.stop:
			d.draw(true)
			return
		}
	}
}

func (d *Dashboard) draw(final bool) {
	snap := d.snapshot(final)
	if d.cfg.ANSI {
		// Home the cursor and clear to end of screen, then repaint.
		fmt.Fprint(d.cfg.Out, "\x1b[H\x1b[2J")
	}
	RenderDash(d.cfg.Out, snap)
}

func (d *Dashboard) snapshot(final bool) DashSnapshot {
	snap := DashSnapshot{Title: d.cfg.Title, Elapsed: time.Since(d.start), Final: final}
	if d.cfg.Metrics != nil {
		if reg := d.cfg.Metrics(); reg != nil {
			snap.Counters = reg.CounterSnapshot()
			snap.Gauges = reg.GaugeSnapshot()
			snap.Hists = reg.HistogramSnapshot()
		}
	}
	if d.cfg.Status != nil {
		snap.Status = d.cfg.Status()
	}
	return snap
}

// Close stops the loop after one final frame. Safe to call twice.
func (d *Dashboard) Close() {
	if d == nil {
		return
	}
	d.once.Do(func() { close(d.stop) })
	<-d.done
}

// DashSnapshot is everything one frame renders. RenderDash is pure over
// it, so tests can render snapshots without a running loop.
type DashSnapshot struct {
	Title    string
	Elapsed  time.Duration
	Final    bool
	Counters map[string]int64
	Gauges   map[string]trace.GaugeValue
	Hists    map[string]trace.HistogramValue
	Status   *ClusterStatus
}

// RenderDash writes one ASCII frame of the snapshot to w.
func RenderDash(w io.Writer, s DashSnapshot) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	state := "running"
	if s.Final {
		state = "done"
	}
	title := s.Title
	if title == "" {
		title = "ffmr"
	}
	fmt.Fprintf(bw, "== %s  [%s, %s] ==\n", title, state, s.Elapsed.Round(100*time.Millisecond))

	if st := s.Status; st != nil {
		if st.Job != nil {
			j := st.Job
			fmt.Fprintf(bw, "job %s  round %d  maps %s  reduces %s  in-flight %d",
				j.Name, j.Round, bar(j.MapsDone, j.Maps), bar(j.ReducesDone, j.Reduces), j.InFlight)
			if j.Parked > 0 {
				fmt.Fprintf(bw, "  parked %d", j.Parked)
			}
			fmt.Fprintln(bw)
		}
		if len(st.Workers) > 0 {
			fmt.Fprintf(bw, "workers alive %d/%d\n", st.WorkersAlive, len(st.Workers))
			ws := append([]WorkerStatus(nil), st.Workers...)
			sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
			for _, wk := range ws {
				// One mark per membership state, so a drain in progress is
				// visible at a glance: live " ", draining "~", drained "-",
				// dead "x".
				mark := " "
				switch {
				case wk.Dead:
					mark = "x"
				case wk.State == "draining":
					mark = "~"
				case wk.State == "drained":
					mark = "-"
				}
				fmt.Fprintf(bw, "  [%s] w%-3d %-21s running %-3d done %-5d store %s  prefetch %-4d beat %dms ago",
					mark, wk.ID, wk.Addr, wk.Running, wk.TasksDone, sizeStr(wk.StoreBytes), wk.Prefetched, wk.LastBeatMS)
				if wk.State != "" && wk.State != "live" {
					fmt.Fprintf(bw, "  %s", wk.State)
				}
				fmt.Fprintln(bw)
			}
		}
		if h := st.Hints; h != nil && (h.QueueDepth > 0 || h.StragglerRatio > 0 || h.QueueWaitP95NS > 0 || h.IdleFraction > 0) {
			fmt.Fprintf(bw, "scaling: queue %d  stragglers %.2f", h.QueueDepth, h.StragglerRatio)
			if h.QueueWaitP95NS > 0 {
				fmt.Fprintf(bw, "  queue-wait p95 %s", time.Duration(h.QueueWaitP95NS).Round(10*time.Microsecond))
			}
			if h.IdleFraction > 0 {
				fmt.Fprintf(bw, "  idle %.0f%%", 100*h.IdleFraction)
			}
			fmt.Fprintln(bw)
		}
	}

	// Scheduler decisions get their own line: they are the events an
	// operator watches a degraded cluster for.
	if len(s.Counters) > 0 {
		deaths := s.Counters["distmr worker deaths"]
		reassigns := s.Counters["distmr reassignments"]
		backups := s.Counters["distmr speculative backups"]
		lost := s.Counters["distmr lost map recoveries"]
		if deaths+reassigns+backups+lost > 0 {
			fmt.Fprintf(bw, "faults: deaths %d  reassigns %d  backups %d  lost-map recoveries %d\n",
				deaths, reassigns, backups, lost)
		}
	}

	if len(s.Gauges) > 0 {
		names := sortedKeys(s.Gauges)
		fmt.Fprintln(bw, "gauges:")
		for _, name := range names {
			gv := s.Gauges[name]
			fmt.Fprintf(bw, "  %-32s %12d  (max %d)\n", name, gv.Last, gv.Max)
		}
	}
	if len(s.Counters) > 0 {
		names := sortedKeys(s.Counters)
		fmt.Fprintln(bw, "counters:")
		for _, name := range names {
			fmt.Fprintf(bw, "  %-32s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Hists) > 0 {
		names := sortedKeys(s.Hists)
		fmt.Fprintln(bw, "latency (p50/p95/p99):")
		for _, name := range names {
			hv := s.Hists[name]
			if hv.Count == 0 {
				continue
			}
			fmt.Fprintf(bw, "  %-32s %10s %10s %10s  (n=%d)\n", name,
				durStr(hv.Quantile(0.50)), durStr(hv.Quantile(0.95)), durStr(hv.Quantile(0.99)), hv.Count)
		}
	}
}

// durStr renders a nanosecond quantile compactly for the latency panel.
func durStr(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// bar renders "done/total" with a small progress bar.
func bar(done, total int) string {
	if total <= 0 {
		return "-"
	}
	const width = 10
	fill := done * width / total
	if fill > width {
		fill = width
	}
	b := make([]byte, width)
	for i := range b {
		if i < fill {
			b[i] = '#'
		} else {
			b[i] = '.'
		}
	}
	return fmt.Sprintf("%d/%d [%s]", done, total, b)
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
