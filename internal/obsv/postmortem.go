package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Post-mortem rendering: after a crash every component's flight
// recorder has dumped its ring into a shared directory. ReadDumpDir
// loads them all and RenderPostmortem merges the events into one
// chronological timeline, the distributed-systems equivalent of reading
// all the black boxes side by side.

// FlightDump is one parsed dump file.
type FlightDump struct {
	Path   string
	Header dumpHeader
	Events []FlightEvent
}

// ReadDump parses one JSONL dump produced by FlightRecorder.Dump.
func ReadDump(path string) (*FlightDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := readDump(f)
	if err != nil {
		return nil, fmt.Errorf("obsv: dump %s: %w", path, err)
	}
	d.Path = path
	return d, nil
}

func readDump(r io.Reader) (*FlightDump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty dump")
	}
	d := &FlightDump{}
	if err := json.Unmarshal(sc.Bytes(), &d.Header); err != nil {
		return nil, fmt.Errorf("bad header: %w", err)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev FlightEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("bad event line: %w", err)
		}
		ev.Source = d.Header.Source
		d.Events = append(d.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadDumpDir loads every flight-*.jsonl dump in dir, sorted by path.
func ReadDumpDir(dir string) ([]*FlightDump, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	dumps := make([]*FlightDump, 0, len(paths))
	for _, p := range paths {
		d, err := ReadDump(p)
		if err != nil {
			return nil, err
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}

// RenderPostmortem writes a human-readable merged timeline of the given
// dumps to w: a summary line per dump, then every event from every
// source interleaved in time order.
func RenderPostmortem(w io.Writer, dumps []*FlightDump) error {
	bw := bufio.NewWriter(w)
	if len(dumps) == 0 {
		fmt.Fprintln(bw, "no flight dumps found")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "post-mortem: %d flight dump(s)\n", len(dumps))
	var all []FlightEvent
	for _, d := range dumps {
		fmt.Fprintf(bw, "  %-12s reason=%-10s events=%d (of %d seen)  %s\n",
			d.Header.Source, d.Header.Reason, len(d.Events), d.Header.Seen, filepath.Base(d.Path))
		all = append(all, d.Events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].T.Before(all[j].T) })
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "merged timeline:")
	for _, ev := range all {
		fmt.Fprintf(bw, "%s %-5s %-12s %s%s\n",
			ev.T.Format("15:04:05.000"), ev.Level, ev.Source, ev.Msg, formatAttrs(ev.Attrs))
	}
	return bw.Flush()
}

// formatAttrs renders an event's attrs as sorted " k=v" pairs.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, attrs[k])
	}
	return b.String()
}
