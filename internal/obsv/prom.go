package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ffmr/internal/trace"
)

// Prometheus text exposition over a trace.Registry. The registry's
// free-form metric names ("distmr worker deaths", "spilled bytes") are
// sanitized into the prometheus grammar and prefixed "ffmr_"; counters
// gain the conventional "_total" suffix and each gauge exports its last
// value plus its high-water mark under "_max". The original registry
// name travels in the HELP line so a scrape can be mapped back to the
// end-of-run trace export exactly.

// MetricName sanitizes a registry metric name into a Prometheus metric
// name: lower-cased, every non-alphanumeric run collapsed to one '_',
// prefixed "ffmr_".
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("ffmr_")
	lastUnderscore := true // suppress a leading '_'
	for _, r := range strings.ToLower(name) {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if alnum {
			b.WriteRune(r)
			lastUnderscore = false
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// WriteMetrics renders every counter and gauge of reg in the Prometheus
// text exposition format (version 0.0.4). A nil registry renders
// nothing. The output is sorted, so two scrapes of an idle registry are
// byte-identical.
func WriteMetrics(w io.Writer, reg *trace.Registry) error {
	bw := bufio.NewWriter(w)
	counters := reg.CounterSnapshot()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := MetricName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Registry counter %q.\n", mn, name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", mn)
		fmt.Fprintf(bw, "%s %d\n", mn, counters[name])
	}
	gauges := reg.GaugeSnapshot()
	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := MetricName(name)
		gv := gauges[name]
		fmt.Fprintf(bw, "# HELP %s Registry gauge %q.\n", mn, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", mn)
		fmt.Fprintf(bw, "%s %d\n", mn, gv.Last)
		fmt.Fprintf(bw, "# HELP %s_max High-water mark of registry gauge %q.\n", mn, name)
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n", mn)
		fmt.Fprintf(bw, "%s_max %d\n", mn, gv.Max)
	}
	hists := reg.HistogramSnapshot()
	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := MetricName(name)
		hv := hists[name]
		fmt.Fprintf(bw, "# HELP %s Registry histogram %q (nanoseconds).\n", mn, name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", mn)
		// Cumulative buckets over the power-of-two bounds; empty leading/
		// trailing buckets are elided but cumulation keeps the series
		// valid. Bounds and counts are integers, so ParseMetrics's
		// integer-only contract holds for every line.
		var cum int64
		for i, n := range hv.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", mn, trace.BucketBound(i), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", mn, hv.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", mn, hv.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", mn, hv.Count)
	}
	return bw.Flush()
}

// ParseMetrics parses a text exposition produced by WriteMetrics back
// into a name -> value map (comment and blank lines are skipped). Tests
// use it to compare a live /metrics scrape against the registry.
func ParseMetrics(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("obsv: malformed metric line %q", line)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obsv: metric %s: %w", name, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
