package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// BlockStore is the pluggable byte store underneath the FS: the file
// system keeps block metadata (size, replica placement, accounting)
// while the store holds the payload. MemStore keeps blocks in process
// memory (the historical behaviour); DiskStore writes each block under
// a private temp dir so DFS contents leave the heap — the disk-backed
// sibling of the shuffle's spill store. Placement and replication
// accounting are identical across stores because the FS computes them
// from block sizes, never from store internals.
type BlockStore interface {
	// Put stores one block's payload under a FS-chosen key.
	Put(key string, data []byte) error
	// Get returns a block's payload. The caller must not modify it for
	// a MemStore; DiskStore returns a fresh slice.
	Get(key string) ([]byte, error)
	// Delete removes a block (unknown keys are ignored).
	Delete(key string)
	// Close releases the store and everything in it.
	Close() error
}

// MemStore is the in-memory block store.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore creates an empty in-memory block store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements BlockStore.
func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	s.m[key] = data
	s.mu.Unlock()
	return nil
}

// Get implements BlockStore.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: block %q missing from store", key)
	}
	return data, nil
}

// Delete implements BlockStore.
func (s *MemStore) Delete(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Close implements BlockStore.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.m = make(map[string][]byte)
	s.mu.Unlock()
	return nil
}

// DiskStore writes each block as one file under a private directory,
// removed by Close.
type DiskStore struct {
	root string
}

// NewDiskStore creates a block store rooted at a fresh private
// directory under dir (the OS temp dir when dir is empty). dir is
// created if it does not exist yet.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("dfs: create disk store: %w", err)
		}
	}
	root, err := os.MkdirTemp(dir, "ffmr-dfs-*")
	if err != nil {
		return nil, fmt.Errorf("dfs: create disk store: %w", err)
	}
	return &DiskStore{root: root}, nil
}

// Root returns the store's private directory.
func (s *DiskStore) Root() string { return s.root }

func (s *DiskStore) path(key string) string { return filepath.Join(s.root, key) }

// Put implements BlockStore.
func (s *DiskStore) Put(key string, data []byte) error {
	if err := os.WriteFile(s.path(key), data, 0o644); err != nil {
		return fmt.Errorf("dfs: write block %q: %w", key, err)
	}
	return nil
}

// Get implements BlockStore.
func (s *DiskStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("dfs: read block %q: %w", key, err)
	}
	return data, nil
}

// Delete implements BlockStore.
func (s *DiskStore) Delete(key string) {
	os.Remove(s.path(key))
}

// Close implements BlockStore, removing the store directory.
func (s *DiskStore) Close() error {
	return os.RemoveAll(s.root)
}
