package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// newDiskFS creates a disk-backed FS rooted under t.TempDir and closes it
// at test end.
func newDiskFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDiskStore: %v", err)
	}
	fs := NewWithStore(cfg, store)
	t.Cleanup(func() {
		if err := fs.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return fs
}

// eachStore runs a subtest against both a memory-backed and a disk-backed
// FS with the same configuration.
func eachStore(t *testing.T, cfg Config, body func(t *testing.T, fs *FS)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { body(t, New(cfg)) })
	t.Run("disk", func(t *testing.T) { body(t, newDiskFS(t, cfg)) })
}

func TestStoreReplicationExceedsNodes(t *testing.T) {
	eachStore(t, Config{Nodes: 3, BlockSize: 8, Replication: 9}, func(t *testing.T, fs *FS) {
		if got := fs.Config().Replication; got != 3 {
			t.Fatalf("replication = %d, want capped at 3 nodes", got)
		}
		data := []byte("replication wider than the cluster")
		if err := fs.WriteFile("wide", data); err != nil {
			t.Fatal(err)
		}
		blocks, err := fs.Blocks("wide")
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range blocks {
			if len(b.Nodes) != 3 {
				t.Fatalf("block %d has %d replicas, want 3", i, len(b.Nodes))
			}
			seen := map[int]bool{}
			for _, n := range b.Nodes {
				if n < 0 || n >= 3 {
					t.Fatalf("block %d replica on node %d, want [0,3)", i, n)
				}
				if seen[n] {
					t.Fatalf("block %d places two replicas on node %d", i, n)
				}
				seen[n] = true
			}
		}
		// Every node holds a full copy, so replica accounting is 3x payload.
		var total int64
		for _, nb := range fs.NodeBytes() {
			total += nb
		}
		if want := 3 * int64(len(data)); total != want {
			t.Fatalf("replica bytes = %d, want %d", total, want)
		}
	})
}

func TestStoreZeroLengthFile(t *testing.T) {
	eachStore(t, Config{Nodes: 2, BlockSize: 16, Replication: 2}, func(t *testing.T, fs *FS) {
		if err := fs.WriteFile("empty", nil); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile("empty")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("read %d bytes from empty file", len(got))
		}
		blocks, err := fs.Blocks("empty")
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != 1 || len(blocks[0].Data) != 0 {
			t.Fatalf("empty file blocks = %+v, want one zero-length block", blocks)
		}
		if sz, _ := fs.Size("empty"); sz != 0 {
			t.Fatalf("Size = %d, want 0", sz)
		}
		// Overwriting and deleting a zero-length file must keep accounting
		// balanced.
		fs.Delete("empty")
		st := fs.Stats()
		if st.BytesStored != 0 {
			t.Fatalf("BytesStored = %d after delete, want 0", st.BytesStored)
		}
		for n, nb := range fs.NodeBytes() {
			if nb != 0 {
				t.Fatalf("node %d holds %d bytes after delete, want 0", n, nb)
			}
		}
	})
}

// TestStoreByteAccountingEquality drives a MemStore-backed and a
// DiskStore-backed FS through the same write/read/overwrite/delete
// sequence and asserts identical contents, stats, and per-node replica
// accounting — the disk path must be a pure storage substitution.
func TestStoreByteAccountingEquality(t *testing.T) {
	cfg := Config{Nodes: 4, BlockSize: 64, Replication: 2}
	mem := New(cfg)
	disk := newDiskFS(t, cfg)

	rng := rand.New(rand.NewSource(7))
	names := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("out/part-%05d", i)
		data := make([]byte, rng.Intn(300))
		rng.Read(data)
		names = append(names, name)
		for _, fs := range []*FS{mem, disk} {
			if err := fs.WriteFile(name, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Overwrite a few, read a few, delete a prefix — on both.
	for _, fs := range []*FS{mem, disk} {
		if err := fs.WriteFile(names[3], []byte("replaced")); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadFile(names[5]); err != nil {
			t.Fatal(err)
		}
		if n := fs.DeletePrefix("out/part-0000"); n != 10 {
			t.Fatalf("DeletePrefix removed %d, want 10", n)
		}
	}

	if ms, ds := mem.Stats(), disk.Stats(); ms != ds {
		t.Fatalf("stats diverge:\n mem  %+v\n disk %+v", ms, ds)
	}
	if mn, dn := mem.NodeBytes(), disk.NodeBytes(); !reflect.DeepEqual(mn, dn) {
		t.Fatalf("node bytes diverge: mem %v disk %v", mn, dn)
	}
	if ml, dl := mem.List(""), disk.List(""); !reflect.DeepEqual(ml, dl) {
		t.Fatalf("file lists diverge: mem %v disk %v", ml, dl)
	}
	for _, name := range mem.List("") {
		mb, err := mem.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		db, err := disk.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb, db) {
			t.Fatalf("contents of %q diverge", name)
		}
	}
	if mem.TotalSize("") != disk.TotalSize("") {
		t.Fatalf("total size diverges: mem %d disk %d", mem.TotalSize(""), disk.TotalSize(""))
	}
}

func TestDiskStoreCloseRemovesDir(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewWithStore(Config{Nodes: 2, BlockSize: 8, Replication: 1}, store)
	if err := fs.WriteFile("f", []byte("some block payload bytes")); err != nil {
		t.Fatal(err)
	}
	root := store.Root()
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("store root missing before Close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); !os.IsNotExist(err) {
		t.Fatalf("store root still present after Close (err=%v)", err)
	}
}
