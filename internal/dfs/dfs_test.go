package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(Config{Nodes: 3, BlockSize: 8, Replication: 2})
	data := []byte("hello distributed world")
	if err := fs.WriteFile("a/b", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := New(Config{Nodes: 2})
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read back %d bytes", len(got))
	}
	if !fs.Exists("empty") {
		t.Error("empty file does not exist")
	}
}

func TestMissingFile(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.ReadFile("nope"); err == nil {
		t.Error("reading a missing file succeeded")
	}
	if _, err := fs.Blocks("nope"); err == nil {
		t.Error("blocks of a missing file succeeded")
	}
	if _, err := fs.Size("nope"); err == nil {
		t.Error("size of a missing file succeeded")
	}
	if err := fs.WriteFile("", []byte("x")); err == nil {
		t.Error("empty file name accepted")
	}
}

func TestBlockingAndPlacement(t *testing.T) {
	fs := New(Config{Nodes: 4, BlockSize: 10, Replication: 2})
	data := make([]byte, 35)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 { // 10+10+10+5
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	for i, b := range blocks {
		if len(b.Nodes) != 2 {
			t.Errorf("block %d has %d replicas, want 2", i, len(b.Nodes))
		}
		if b.Nodes[0] == b.Nodes[1] {
			t.Errorf("block %d replicas on the same node", i)
		}
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := New(Config{Nodes: 2, Replication: 5})
	if got := fs.Config().Replication; got != 2 {
		t.Fatalf("replication = %d, want capped at 2", got)
	}
}

func TestOverwriteReplacesContents(t *testing.T) {
	fs := New(Config{Nodes: 2, BlockSize: 4})
	if err := fs.WriteFile("f", []byte("first version")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", []byte("2nd")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "2nd" {
		t.Fatalf("read %q after overwrite", got)
	}
	if st := fs.Stats(); st.BytesStored != 3 {
		t.Errorf("stored bytes = %d, want 3", st.BytesStored)
	}
}

func TestDeleteAndPrefixOps(t *testing.T) {
	fs := New(Config{Nodes: 2})
	names := []string{"out/part-00000", "out/part-00001", "other/x"}
	for i, n := range names {
		if err := fs.WriteFile(n, []byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("out/"); len(got) != 2 {
		t.Fatalf("List(out/) = %v", got)
	}
	if got := fs.TotalSize("out/"); got != 12 {
		t.Fatalf("TotalSize(out/) = %d, want 12", got)
	}
	if n := fs.DeletePrefix("out/"); n != 2 {
		t.Fatalf("DeletePrefix removed %d, want 2", n)
	}
	if fs.Exists("out/part-00000") {
		t.Error("deleted file still exists")
	}
	if !fs.Exists("other/x") {
		t.Error("unrelated file was deleted")
	}
	fs.Delete("other/x")
	fs.Delete("other/x") // idempotent
	if fs.Exists("other/x") {
		t.Error("Delete did not remove file")
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := New(Config{Nodes: 3, BlockSize: 8, Replication: 2})
	if err := fs.WriteFile("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("a"); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.BytesWritten != 100 || st.BytesRead != 100 || st.BytesStored != 100 {
		t.Errorf("stats = %+v", st)
	}
	if st.FilesCreated != 1 {
		t.Errorf("files created = %d", st.FilesCreated)
	}
	fs.Delete("a")
	st = fs.Stats()
	if st.BytesStored != 0 || st.FilesDeleted != 1 {
		t.Errorf("post-delete stats = %+v", st)
	}
	// Node replica accounting must drain to zero after delete.
	for n, b := range fs.NodeBytes() {
		if b != 0 {
			t.Errorf("node %d still accounts %d bytes", n, b)
		}
	}
}

func TestNodeBytesBalance(t *testing.T) {
	fs := New(Config{Nodes: 4, BlockSize: 10, Replication: 1})
	if err := fs.WriteFile("f", make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	nb := fs.NodeBytes()
	var total int64
	for _, b := range nb {
		total += b
		if b == 0 {
			t.Error("round-robin placement left a node empty")
		}
	}
	if total != 400 {
		t.Errorf("replica bytes total %d, want 400", total)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	fs := New(Config{Nodes: 3, BlockSize: 16, Replication: 2})
	i := 0
	f := func(data []byte) bool {
		i++
		name := fmt.Sprintf("q/%d", i)
		if err := fs.WriteFile(name, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordWriterReader(t *testing.T) {
	var w RecordWriter
	type kv struct{ k, v string }
	records := []kv{
		{"alpha", "1"},
		{"", "empty key"},
		{"empty value", ""},
		{"binary", string([]byte{0, 1, 2, 255})},
	}
	for _, r := range records {
		w.Append([]byte(r.k), []byte(r.v))
	}
	if w.Records() != len(records) {
		t.Fatalf("writer records = %d", w.Records())
	}

	r := NewRecordReader(w.Bytes())
	for i, want := range records {
		k, v, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if string(k) != want.k || string(v) != want.v {
			t.Errorf("record %d = (%q,%q), want (%q,%q)", i, k, v, want.k, want.v)
		}
	}
	if _, _, ok, err := r.Next(); ok || err != nil {
		t.Errorf("expected clean EOF, got ok=%v err=%v", ok, err)
	}

	if n, err := CountRecords(w.Bytes()); err != nil || n != len(records) {
		t.Errorf("CountRecords = %d,%v", n, err)
	}
}

func TestRecordReaderCorruption(t *testing.T) {
	var w RecordWriter
	w.Append([]byte("key"), []byte("value"))
	data := w.Bytes()
	// Truncate inside the value.
	r := NewRecordReader(data[:len(data)-2])
	if _, _, _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
	// A length prefix pointing past the buffer.
	r = NewRecordReader([]byte{0x20, 'x'})
	if _, _, _, err := r.Next(); err == nil {
		t.Error("overlong length accepted")
	}
}

func TestRecordWriterReset(t *testing.T) {
	var w RecordWriter
	w.Append([]byte("a"), []byte("b"))
	w.Reset()
	if w.Len() != 0 || w.Records() != 0 {
		t.Error("Reset did not clear writer")
	}
	w.Append([]byte("c"), []byte("d"))
	r := NewRecordReader(w.Bytes())
	k, v, ok, err := r.Next()
	if err != nil || !ok || string(k) != "c" || string(v) != "d" {
		t.Errorf("after reset got (%q,%q,%v,%v)", k, v, ok, err)
	}
}

func TestQuickRecordFraming(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		var w RecordWriter
		for _, p := range pairs {
			w.Append(p[0], p[1])
		}
		r := NewRecordReader(w.Bytes())
		for _, p := range pairs {
			k, v, ok, err := r.Next()
			if err != nil || !ok {
				return false
			}
			if !bytes.Equal(k, p[0]) || !bytes.Equal(v, p[1]) {
				return false
			}
		}
		_, _, ok, err := r.Next()
		return !ok && err == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
