// Package dfs emulates the distributed file system underneath the
// MapReduce engine (HDFS in the paper's Hadoop deployment, GFS in
// Google's). Files are split into fixed-size blocks placed on simulated
// cluster nodes with a configurable replication factor, and the store
// keeps byte-level accounting of everything written and read so the
// experiment harness can report graph sizes ("Size" / "Max Size" columns
// of the paper's graph table) and model I/O cost per MapReduce round.
//
// Block payloads live in a pluggable BlockStore: MemStore (the default)
// keeps them in process memory for faithful accounting at test speed;
// DiskStore writes each block under a private temp dir so graph state
// larger than RAM can flow through the same placement and accounting
// machinery.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultBlockSize mirrors the common HDFS configuration (64 MiB); tests
// use much smaller blocks to exercise multi-block paths.
const DefaultBlockSize = 64 << 20

// Config parameterizes a file system instance.
type Config struct {
	// Nodes is the number of storage nodes (the paper's slave nodes).
	Nodes int
	// BlockSize is the maximum block payload size in bytes.
	BlockSize int
	// Replication is the number of nodes holding a copy of each block
	// (the paper sets DFS replication to 2).
	Replication int
}

func (c *Config) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.Nodes {
		c.Replication = c.Nodes
	}
}

// Block is one block of a file together with its replica placement, as
// returned by Blocks (payload materialized from the block store).
type Block struct {
	Data []byte
	// Nodes lists the node IDs that hold a replica, primary first.
	Nodes []int
}

// blockRef is the stored representation of one block: metadata plus the
// store key of its payload.
type blockRef struct {
	key   string
	size  int
	nodes []int
}

// fileData is the stored representation of a file.
type fileData struct {
	blocks []blockRef
	size   int64
}

// Stats is a snapshot of cumulative I/O counters.
type Stats struct {
	BytesWritten int64 // payload bytes written (before replication)
	BytesRead    int64
	BytesStored  int64 // current payload bytes across all live files
	FilesCreated int64
	FilesDeleted int64
}

// FS is a distributed file system emulation over a pluggable block
// store. The zero value is not usable; create instances with New or
// NewWithStore.
type FS struct {
	cfg   Config
	store BlockStore

	mu        sync.RWMutex
	files     map[string]*fileData
	nextNode  int
	nextBlock int64
	stats     Stats
	nodeBytes []int64 // replica bytes per node
}

// New creates a file system with the given configuration, backed by an
// in-memory block store.
func New(cfg Config) *FS {
	return NewWithStore(cfg, NewMemStore())
}

// NewWithStore creates a file system over the given block store. The FS
// owns the store: Close releases it.
func NewWithStore(cfg Config, store BlockStore) *FS {
	cfg.applyDefaults()
	return &FS{
		cfg:       cfg,
		store:     store,
		files:     make(map[string]*fileData),
		nodeBytes: make([]int64, cfg.Nodes),
	}
}

// Config returns the configuration the file system was created with
// (after defaulting).
func (fs *FS) Config() Config { return fs.cfg }

// Close releases the backing block store (removing its directory for a
// DiskStore). The FS is unusable afterwards.
func (fs *FS) Close() error {
	return fs.store.Close()
}

// placement chooses replica nodes for the next block, round-robin over
// nodes the way HDFS spreads blocks across a quiet cluster.
func (fs *FS) placement() []int {
	nodes := make([]int, fs.cfg.Replication)
	for i := range nodes {
		nodes[i] = (fs.nextNode + i) % fs.cfg.Nodes
	}
	fs.nextNode = (fs.nextNode + 1) % fs.cfg.Nodes
	return nodes
}

// WriteFile stores data as a new file, replacing any existing file with
// the same name (MapReduce output paths are overwritten between rounds).
func (fs *FS) WriteFile(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.deleteLocked(name)

	fd := &fileData{size: int64(len(data))}
	for off := 0; off < len(data) || off == 0; off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		fs.nextBlock++
		ref := blockRef{
			key:   fmt.Sprintf("b%010d", fs.nextBlock),
			size:  end - off,
			nodes: fs.placement(),
		}
		if err := fs.store.Put(ref.key, append([]byte(nil), data[off:end]...)); err != nil {
			// Roll back blocks already stored so a failed write leaves
			// no orphans.
			for _, b := range fd.blocks {
				fs.store.Delete(b.key)
			}
			return err
		}
		fd.blocks = append(fd.blocks, ref)
		for _, n := range ref.nodes {
			fs.nodeBytes[n] += int64(ref.size)
		}
		if len(data) == 0 {
			break
		}
	}
	fs.files[name] = fd
	fs.stats.FilesCreated++
	fs.stats.BytesWritten += int64(len(data))
	fs.stats.BytesStored += int64(len(data))
	return nil
}

// ReadFile returns the full contents of a file.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	out := make([]byte, 0, fd.size)
	for _, ref := range fd.blocks {
		data, err := fs.store.Get(ref.key)
		if err != nil {
			return nil, fmt.Errorf("dfs: file %q: %w", name, err)
		}
		out = append(out, data...)
	}
	fs.stats.BytesRead += fd.size
	return out, nil
}

// Blocks returns the block layout of a file with payloads materialized
// from the block store. The MapReduce engine uses block placement for
// locality-aware scheduling.
func (fs *FS) Blocks(name string) ([]Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	out := make([]Block, 0, len(fd.blocks))
	for _, ref := range fd.blocks {
		data, err := fs.store.Get(ref.key)
		if err != nil {
			return nil, fmt.Errorf("dfs: file %q: %w", name, err)
		}
		out = append(out, Block{Data: data, Nodes: ref.nodes})
	}
	return out, nil
}

// Size returns the payload size of a file in bytes.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fd, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return fd.size, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes a file if it exists.
func (fs *FS) Delete(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.deleteLocked(name)
}

func (fs *FS) deleteLocked(name string) {
	fd, ok := fs.files[name]
	if !ok {
		return
	}
	for _, ref := range fd.blocks {
		for _, n := range ref.nodes {
			fs.nodeBytes[n] -= int64(ref.size)
		}
		fs.store.Delete(ref.key)
	}
	fs.stats.BytesStored -= fd.size
	fs.stats.FilesDeleted++
	delete(fs.files, name)
}

// DeletePrefix removes every file whose name starts with prefix and
// returns the number removed (used to clean up a round's output dir).
func (fs *FS) DeletePrefix(prefix string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var victims []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			victims = append(victims, name)
		}
	}
	for _, name := range victims {
		fs.deleteLocked(name)
	}
	return len(victims)
}

// List returns the names of files with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the combined payload size of all files with the given
// prefix. The experiment harness uses it for the paper's "Size" and
// "Max Size" graph-table columns.
func (fs *FS) TotalSize(prefix string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for name, fd := range fs.files {
		if strings.HasPrefix(name, prefix) {
			total += fd.size
		}
	}
	return total
}

// Stats returns a snapshot of the cumulative I/O counters.
func (fs *FS) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.stats
}

// NodeBytes returns the replica bytes currently stored on each node.
func (fs *FS) NodeBytes() []int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]int64, len(fs.nodeBytes))
	copy(out, fs.nodeBytes)
	return out
}
