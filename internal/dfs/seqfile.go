package dfs

import (
	"fmt"

	"ffmr/internal/spill"
)

// SequenceFile-style record framing: the paper stores the graph in HDFS
// "in SequenceFile format as a list of vertices". Records are
// length-prefixed <key, value> byte-string pairs:
//
//	uvarint keyLen | key bytes | uvarint valueLen | value bytes
//
// The framing is self-contained per record so a reader can stream records
// without knowing the payload schema. The encoding itself lives in the
// spill package (the out-of-core shuffle shares it); this file is the
// DFS-facing veneer.

// RecordWriter accumulates framed records into a buffer destined for one
// DFS file. The zero value is ready to use.
type RecordWriter struct {
	buf     []byte
	records int
}

// Append adds one record.
func (w *RecordWriter) Append(key, value []byte) {
	w.buf = spill.AppendFrame(w.buf, key, value)
	w.records++
}

// Len returns the current encoded size in bytes.
func (w *RecordWriter) Len() int { return len(w.buf) }

// Records returns the number of records appended so far.
func (w *RecordWriter) Records() int { return w.records }

// Bytes returns the encoded file contents. The slice aliases the writer's
// buffer; write it to the FS before appending more records.
func (w *RecordWriter) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining capacity.
func (w *RecordWriter) Reset() {
	w.buf = w.buf[:0]
	w.records = 0
}

// RecordReader streams framed records from an encoded file.
type RecordReader struct {
	data []byte
	off  int
}

// NewRecordReader wraps encoded file contents.
func NewRecordReader(data []byte) *RecordReader {
	return &RecordReader{data: data}
}

// Next returns the next record. The returned slices alias the underlying
// file data and must not be modified. ok is false at end of file.
func (r *RecordReader) Next() (key, value []byte, ok bool, err error) {
	if r.off >= len(r.data) {
		return nil, nil, false, nil
	}
	key, value, next, err := spill.ReadFrame(r.data, r.off)
	if err != nil {
		return nil, nil, false, fmt.Errorf("dfs: %w", err)
	}
	r.off = next
	return key, value, true, nil
}

// CountRecords returns the number of records in encoded file contents.
func CountRecords(data []byte) (int, error) {
	r := NewRecordReader(data)
	n := 0
	for {
		_, _, ok, err := r.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
