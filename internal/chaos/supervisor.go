// Package chaos composes the repo's fault injectors — injected worker
// crashes and disk failures (mapreduce.Faults), network partitions
// (rpcutil.NetFaults), slow nodes (Worker.SetTaskDelay), graceful drains
// and master restarts — under a seeded schedule generator, so an entire
// chaos run is reproducible from (Seed, Schedule). The Supervisor wraps
// a master and its worker fleet across master generations; the Runner
// fires a Schedule's events against it and records exactly what it did.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"ffmr/internal/distmr"
	"ffmr/internal/mapreduce"
	"ffmr/internal/spill"
	"ffmr/internal/trace"
)

// SupervisorConfig configures a supervised in-process cluster.
type SupervisorConfig struct {
	// Workers is the initial fleet size (default 3).
	Workers int
	// Master configures each master generation. PersistState is forced
	// on: master-restart recovery depends on DFS-persisted job state.
	Master distmr.Config
	// NewStore builds each worker's segment store (default in-memory).
	NewStore func() spill.RunStore
	// Tracer is handed to every master generation and worker.
	Tracer *trace.Tracer
	// HeartbeatMisses is each worker's miss budget (default 50 — roomy,
	// so workers survive the heartbeat gap of a master restart and
	// re-register instead of dying).
	HeartbeatMisses int
}

// Supervisor runs a master and its workers across master restarts: the
// external process supervisor a real deployment would have. Killing the
// master (Crash — no goodbyes) and starting a fresh one on the same
// address exercises the full recovery path: workers redial, re-register
// under new identities, and a job retried against the new generation
// resumes from DFS-persisted task state instead of starting over.
type Supervisor struct {
	cfg SupervisorConfig

	mu         sync.Mutex
	gen        int
	master     *distmr.Master
	addr       string
	workers    []*distmr.Worker
	closed     bool
	restarting bool
}

// StartSupervisor boots the first master generation and its fleet.
func StartSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 50
	}
	cfg.Master.PersistState = true
	if cfg.Master.Tracer == nil {
		cfg.Master.Tracer = cfg.Tracer
	}
	m, err := distmr.NewMaster(cfg.Master)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{cfg: cfg, gen: 1, master: m, addr: m.Addr()}
	for i := 0; i < cfg.Workers; i++ {
		if _, err := s.AddWorker(); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := m.WaitForWorkers(cfg.Workers, 10*time.Second); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Master returns the current master generation.
func (s *Supervisor) Master() *distmr.Master {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// Generation returns how many master generations have run (1 initially).
func (s *Supervisor) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Workers returns every worker ever started, dead ones included.
func (s *Supervisor) Workers() []*distmr.Worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*distmr.Worker(nil), s.workers...)
}

// LiveWorkers returns workers that are neither dead nor draining, in
// start order — the deterministic victim pool for chaos events.
func (s *Supervisor) LiveWorkers() []*distmr.Worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	var live []*distmr.Worker
	for _, w := range s.workers {
		if !w.Dead() && !w.Draining() {
			live = append(live, w)
		}
	}
	return live
}

// AddWorker starts one additional worker against the current address.
func (s *Supervisor) AddWorker() (*distmr.Worker, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("chaos: supervisor closed")
	}
	addr := s.addr
	s.mu.Unlock()
	wcfg := distmr.WorkerConfig{
		MasterAddr:      addr,
		HeartbeatMisses: s.cfg.HeartbeatMisses,
	}
	if s.cfg.NewStore != nil {
		wcfg.Store = s.cfg.NewStore()
	}
	w, err := distmr.StartWorker(wcfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		w.Close()
		return nil, fmt.Errorf("chaos: supervisor closed")
	}
	s.workers = append(s.workers, w)
	s.mu.Unlock()
	return w, nil
}

// RestartMaster crashes the current master generation and binds a fresh
// one on the same address. Surviving workers redial and re-register; a
// job in flight fails over via RunJob's retry and resumes from the
// DFS-persisted task state.
func (s *Supervisor) RestartMaster() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("chaos: supervisor closed")
	}
	old := s.master
	s.gen++
	// The flag closes a race with RunJob: a job that snapshots the
	// master between the generation bump here and the install below
	// would otherwise see its master die with no apparent generation
	// change and misread the failure as genuine.
	s.restarting = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.restarting = false
		s.mu.Unlock()
	}()

	old.Crash()
	mcfg := s.cfg.Master
	mcfg.Addr = s.addr
	var m *distmr.Master
	var err error
	// The old listener just closed; rebinding the same port can race the
	// kernel briefly, so retry for a bounded window.
	for deadline := time.Now().Add(5 * time.Second); ; {
		m, err = distmr.NewMaster(mcfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: rebind master at %s: %w", s.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		m.Shutdown()
		return fmt.Errorf("chaos: supervisor closed")
	}
	s.master = m
	s.mu.Unlock()
	return nil
}

// RunJob implements mapreduce.Backend across master generations: a job
// that fails because its master generation died is retried against the
// next generation, where persisted task state turns the retry into a
// resume. Failures with no generation change are genuine and returned.
func (s *Supervisor) RunJob(c *mapreduce.Cluster, job *mapreduce.Job) (*mapreduce.Result, error) {
	const maxFailovers = 5
	for failover := 0; ; failover++ {
		s.mu.Lock()
		m := s.master
		s.mu.Unlock()
		res, err := m.RunJob(c, job)
		if err == nil {
			return res, nil
		}
		// A failover is identified by the master pointer, not the
		// generation counter: RestartMaster bumps the generation before
		// crashing the old master, so a job started inside the swap
		// window sees the new generation number with the doomed master.
		s.mu.Lock()
		failedOver := s.restarting || s.master != m
		closed := s.closed
		s.mu.Unlock()
		if closed || !failedOver || failover >= maxFailovers {
			return res, err
		}
		// The master died underneath the job. Wait for the replacement
		// generation to be installed, then retry against it.
		for deadline := time.Now().Add(5 * time.Second); ; {
			s.mu.Lock()
			cur, restarting := s.master, s.restarting
			s.mu.Unlock()
			if cur != m && !restarting {
				break
			}
			if time.Now().After(deadline) {
				return res, err
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Close tears the cluster down: master first, then every worker, waiting
// for each so leak checks stay clean.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	m := s.master
	workers := s.workers
	s.workers = nil
	s.mu.Unlock()

	if m != nil {
		m.Shutdown()
	}
	for _, w := range workers {
		w.Close()
	}
	for _, w := range workers {
		w.Wait()
	}
}
