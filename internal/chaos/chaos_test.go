package chaos

import (
	"reflect"
	"testing"
	"time"

	"ffmr/internal/leakcheck"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGenerateDeterministic pins the root of chaos reproducibility: the
// same (seed, profile) always yields the same schedule, and different
// seeds yield different ones.
func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Events: 10}
	a := Generate(99, p)
	b := Generate(99, p)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different schedules:\n a %v\n b %v", a.Events, b.Events)
	}
	c := Generate(100, p)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical schedules")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("events out of firing order at %d: %s after %s", i, a.Events[i].At, a.Events[i-1].At)
		}
	}
}

// runOnce boots a fresh supervised cluster, fires the schedule against
// it with no concurrent job, and returns the applied-event log.
func runOnce(t *testing.T, sched Schedule) []string {
	t.Helper()
	sup, err := StartSupervisor(SupervisorConfig{Workers: 3})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	defer sup.Close()
	return NewRunner(sup, sched).Run()
}

// TestRunnerLogReproducible is the reproducibility contract: two runs of
// the same (Seed, Schedule) against identically shaped clusters produce
// byte-identical applied-event logs. The fleet only changes through the
// schedule's own events (no concurrent job), so victim resolution is
// deterministic.
func TestRunnerLogReproducible(t *testing.T) {
	defer leakcheck.Check(t)()
	if testing.Short() {
		t.Skip("boots two clusters")
	}

	sched := Generate(4242, Profile{
		Events:   8,
		Horizon:  500 * time.Millisecond,
		MaxSlot:  5,
		MaxDelay: 5 * time.Millisecond,
		MaxFor:   50 * time.Millisecond,
	})
	first := runOnce(t, sched)
	second := runOnce(t, sched)

	if len(first) != len(sched.Events) {
		t.Fatalf("log has %d lines for %d events", len(first), len(sched.Events))
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same (Seed, Schedule) produced different applied-event logs:\n run 1: %v\n run 2: %v", first, second)
	}
}

// TestWorkersReregisterAfterMasterRestart pins the failover plumbing the
// chaos suite leans on: crash the master, boot a new generation on the
// same address, and the surviving fleet redials and re-registers.
func TestWorkersReregisterAfterMasterRestart(t *testing.T) {
	defer leakcheck.Check(t)()

	sup, err := StartSupervisor(SupervisorConfig{Workers: 2})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	defer sup.Close()

	if err := sup.RestartMaster(); err != nil {
		t.Fatalf("RestartMaster: %v", err)
	}
	if g := sup.Generation(); g != 2 {
		t.Errorf("generation = %d after one restart, want 2", g)
	}
	waitFor(t, 10*time.Second, "workers to re-register with the new generation", func() bool {
		return sup.Master().LiveWorkers() == 2
	})
}
