package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind names one chaos injection.
type EventKind string

const (
	// CrashWorker kills a worker abruptly — no goodbye, its winning map
	// output is lost unless it was persisted or handed off.
	CrashWorker EventKind = "crash-worker"
	// DrainWorker retires a worker gracefully: running attempts finish
	// and its winning map output hands off through the DFS.
	DrainWorker EventKind = "drain-worker"
	// JoinWorker adds a fresh worker mid-run.
	JoinWorker EventKind = "join-worker"
	// SlowWorker injects per-task latency on a worker for a while,
	// manufacturing a straggler for the speculation machinery.
	SlowWorker EventKind = "slow-worker"
	// PartitionWorker blackholes traffic toward a worker for a while:
	// leases to it error, shuffle fetches from it report lost maps.
	PartitionWorker EventKind = "partition-worker"
	// RestartMaster crashes the master and boots a new generation on the
	// same address, recovering scheduler state from the DFS.
	RestartMaster EventKind = "restart-master"
)

// AllKinds lists every event kind, in a fixed order.
func AllKinds() []EventKind {
	return []EventKind{CrashWorker, DrainWorker, JoinWorker, SlowWorker, PartitionWorker, RestartMaster}
}

// Event is one scheduled injection. At is the offset from run start.
// Slot picks the victim deterministically: index modulo the live-worker
// pool at fire time. Delay is SlowWorker's injected per-task latency;
// For is how long a slowdown or partition lasts before it heals.
type Event struct {
	At    time.Duration
	Kind  EventKind
	Slot  int
	Delay time.Duration
	For   time.Duration
}

// String renders the event exactly as the runner logs it, so a schedule
// print and an applied-event log line up one to one.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s slot=%d", e.At, e.Kind, e.Slot)
	if e.Kind == SlowWorker {
		s += fmt.Sprintf(" delay=%s", e.Delay)
	}
	if e.For > 0 && (e.Kind == SlowWorker || e.Kind == PartitionWorker) {
		s += fmt.Sprintf(" for=%s", e.For)
	}
	return s
}

// Schedule is a reproducible chaos scenario: the seed that generated it
// plus the events in firing order. Two runs of the same (Seed, Schedule)
// produce identical applied-event logs.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Profile bounds schedule generation.
type Profile struct {
	// Events is how many events to draw (default 6).
	Events int
	// Horizon is the window events are drawn in, [0, Horizon)
	// (default 2s).
	Horizon time.Duration
	// Kinds restricts the event kinds drawn (default AllKinds).
	Kinds []EventKind
	// MaxSlot bounds the victim slot draw (default 8). Slots wrap modulo
	// the live pool at fire time, so this only shapes the distribution.
	MaxSlot int
	// MaxDelay bounds SlowWorker latency (default 50ms); MaxFor bounds
	// slowdown/partition durations (default 300ms).
	MaxDelay time.Duration
	MaxFor   time.Duration
}

func (p *Profile) applyDefaults() {
	if p.Events <= 0 {
		p.Events = 6
	}
	if p.Horizon <= 0 {
		p.Horizon = 2 * time.Second
	}
	if len(p.Kinds) == 0 {
		p.Kinds = AllKinds()
	}
	if p.MaxSlot <= 0 {
		p.MaxSlot = 8
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.MaxFor <= 0 {
		p.MaxFor = 300 * time.Millisecond
	}
}

// Generate draws a schedule from the seed: the same (seed, profile)
// always yields the same schedule, which is the root of chaos-run
// reproducibility.
func Generate(seed int64, p Profile) Schedule {
	p.applyDefaults()
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, p.Events)
	for i := range events {
		e := Event{
			At:   time.Duration(rng.Int63n(int64(p.Horizon))),
			Kind: p.Kinds[rng.Intn(len(p.Kinds))],
			Slot: rng.Intn(p.MaxSlot),
		}
		switch e.Kind {
		case SlowWorker:
			e.Delay = time.Duration(rng.Int63n(int64(p.MaxDelay))) + time.Millisecond
			e.For = time.Duration(rng.Int63n(int64(p.MaxFor))) + time.Millisecond
		case PartitionWorker:
			e.For = time.Duration(rng.Int63n(int64(p.MaxFor))) + time.Millisecond
		}
		events[i] = e
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Schedule{Seed: seed, Events: events}
}
