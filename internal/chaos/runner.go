package chaos

import (
	"fmt"
	"sync"
	"time"

	"ffmr/internal/distmr"
	"ffmr/internal/rpcutil"
)

// Runner fires a Schedule's events against a Supervisor and records an
// applied-event log: one line per event, stating what was injected and
// which victim it resolved to. Victims resolve deterministically — slot
// modulo the live pool, victims named by their start-order index — so as
// long as the fleet only changes through the schedule's own events, two
// runs of the same (Seed, Schedule) produce byte-identical logs. (A
// concurrently running job with fleet-altering fault injection can race
// victim resolution; the schedule itself is still identical.)
type Runner struct {
	sup    *Supervisor
	sched  Schedule
	faults *rpcutil.NetFaults

	mu  sync.Mutex
	log []string

	heals sync.WaitGroup
}

// NewRunner prepares a runner for one schedule.
func NewRunner(sup *Supervisor, sched Schedule) *Runner {
	return &Runner{sup: sup, sched: sched, faults: rpcutil.NewNetFaults()}
}

// Run installs network-fault injection, fires every event at its offset,
// waits for timed faults to heal, and returns the applied-event log. It
// blocks for the schedule's duration; run it alongside a job from
// another goroutine.
func (r *Runner) Run() []string {
	restore := rpcutil.InstallNetFaults(r.faults)
	start := time.Now()
	for _, e := range r.sched.Events {
		if d := time.Until(start.Add(e.At)); d > 0 {
			time.Sleep(d)
		}
		r.apply(e)
	}
	r.heals.Wait()
	restore()
	return r.Log()
}

// Log returns the applied-event log so far.
func (r *Runner) Log() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

func (r *Runner) record(e Event, outcome string) {
	r.mu.Lock()
	r.log = append(r.log, e.String()+" -> "+outcome)
	r.mu.Unlock()
}

// victim resolves an event's slot against the live pool and names the
// worker by its index in the ever-started fleet.
func (r *Runner) victim(e Event) (*distmr.Worker, string) {
	live := r.sup.LiveWorkers()
	if len(live) == 0 {
		return nil, "no-target"
	}
	w := live[e.Slot%len(live)]
	for i, all := range r.sup.Workers() {
		if all == w {
			return w, fmt.Sprintf("worker[%d]", i)
		}
	}
	return w, "worker[?]"
}

func (r *Runner) apply(e Event) {
	switch e.Kind {
	case CrashWorker:
		if len(r.sup.LiveWorkers()) <= 1 {
			// Never fell the last live worker: a chaos run should stress
			// the cluster, not strand the job on an empty fleet. The guard
			// is itself deterministic, so logs stay reproducible.
			r.record(e, "skipped-last-worker")
			return
		}
		w, name := r.victim(e)
		if w == nil {
			r.record(e, name)
			return
		}
		w.Kill()
		r.record(e, name)
	case DrainWorker:
		if len(r.sup.LiveWorkers()) <= 1 {
			r.record(e, "skipped-last-worker")
			return
		}
		w, name := r.victim(e)
		if w == nil {
			r.record(e, name)
			return
		}
		w.Drain()
		r.record(e, name)
	case JoinWorker:
		if _, err := r.sup.AddWorker(); err != nil {
			r.record(e, "error")
			return
		}
		r.record(e, fmt.Sprintf("worker[%d]", len(r.sup.Workers())-1))
	case SlowWorker:
		w, name := r.victim(e)
		if w == nil {
			r.record(e, name)
			return
		}
		w.SetTaskDelay(e.Delay)
		r.heals.Add(1)
		time.AfterFunc(e.For, func() {
			w.SetTaskDelay(0)
			r.heals.Done()
		})
		r.record(e, name)
	case PartitionWorker:
		w, name := r.victim(e)
		if w == nil {
			r.record(e, name)
			return
		}
		addr := w.Addr()
		r.faults.Partition(addr)
		r.heals.Add(1)
		time.AfterFunc(e.For, func() {
			r.faults.Heal(addr)
			r.heals.Done()
		})
		r.record(e, name)
	case RestartMaster:
		if err := r.sup.RestartMaster(); err != nil {
			r.record(e, "error")
			return
		}
		r.record(e, fmt.Sprintf("gen=%d", r.sup.Generation()))
	default:
		r.record(e, "unknown-kind")
	}
}
