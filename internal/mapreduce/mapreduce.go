// Package mapreduce implements the multi-round MapReduce runtime the FFMR
// algorithms run on, emulating the Hadoop deployment used in the paper: a
// master that schedules map and reduce tasks over a cluster of slave
// nodes with a bounded number of worker slots, input splits taken from a
// distributed file system, hash partitioning, a sorted shuffle,
// Hadoop-style named counters, and per-job I/O statistics (map output
// records, shuffle bytes, largest record) that the paper's evaluation
// reports directly (Table I, Fig. 7).
//
// The shuffle has two interchangeable paths selected by Job.SpillBudget:
// the default in-memory sort-and-group, and the out-of-core path built on
// package spill, where map outputs exceeding the budget are sorted and
// spilled to segment files that reducers consume through a k-way merge —
// Hadoop's external sort, scaled down. Both paths must produce identical
// counters; the spill differential tests enforce that.
//
// Execution has two backends behind the same Cluster API: the simulated
// engine runs tasks on goroutines in-process, while Cluster.Distributed
// hands whole jobs to a distmr master that leases tasks to worker
// processes over TCP (see internal/distmr). Tasks execute concurrently
// on real goroutines, so computation cost is measured; data movement
// cost is modelled by a configurable CostModel so that a simulated
// per-round runtime comparable to the paper's wall-clock-per-round can
// be reported regardless of host speed.
package mapreduce

import (
	"fmt"
	"time"

	"ffmr/internal/trace"
)

// TaskContext is handed to Mapper and Reducer implementations. It carries
// the per-round environment: the round number, the emit function, named
// counters, broadcast side files (the paper's AugmentedEdges list is one),
// and an opaque service handle (the FF2+ aug_proc client).
//
// A TaskContext is owned by a single task and must not be retained after
// the Map/Reduce call returns.
type TaskContext struct {
	round    int
	task     int
	exec     int
	node     int
	counters *Counters
	side     map[string][]byte
	service  any
	emit     func(key, value []byte)
}

// Round returns the driver-assigned round number of the running job.
func (c *TaskContext) Round() int { return c.round }

// Task returns the task index within the current phase.
func (c *TaskContext) Task() int { return c.task }

// Exec identifies this physical execution of the task: the attempt
// number on the simulated engine, the assignment number on a
// distributed backend. Stateful job services use (Task, Exec) to
// recognize — and discard — submissions duplicated by task re-execution
// (retries, reassignments after worker deaths, speculative backups).
func (c *TaskContext) Exec() int { return c.exec }

// Node returns the simulated cluster node the task runs on.
func (c *TaskContext) Node() int { return c.node }

// Emit outputs an intermediate record (from a mapper) or a final record
// (from a reducer). Key and value are copied; callers may reuse buffers.
func (c *TaskContext) Emit(key, value []byte) { c.emit(key, value) }

// Inc adds delta to the named counter (Hadoop's custom counters).
func (c *TaskContext) Inc(name string, delta int64) { c.counters.Add(name, delta) }

// SideFile returns the contents of a broadcast side file loaded for this
// job, or nil if the job has no such file. Side data is shared across all
// tasks and must be treated as read-only.
func (c *TaskContext) SideFile(name string) []byte { return c.side[name] }

// Service returns the opaque service handle configured on the job (used
// by FF2+ reducers to reach the external aug_proc accumulator).
func (c *TaskContext) Service() any { return c.service }

// Mapper processes one input record at a time. Implementations are
// created per map task via Job.NewMapper, so per-task state (e.g. FF4's
// preallocated buffers) is safe without synchronization.
type Mapper interface {
	Map(ctx *TaskContext, key, value []byte) error
}

// Values iterates the shuffled values of one reduce group in
// deterministic (sorted) order.
type Values struct {
	vals [][]byte
	pos  int
}

// Next returns the next value in the group, or nil when exhausted. The
// returned slice is owned by the engine; treat it as read-only.
func (v *Values) Next() []byte {
	if v.pos >= len(v.vals) {
		return nil
	}
	val := v.vals[v.pos]
	v.pos++
	return val
}

// Len returns the total number of values in the group.
func (v *Values) Len() int { return len(v.vals) }

// Reducer processes one key group at a time. master is the
// partition-aligned base record for the key when the job runs with the
// schimmy pattern (nil otherwise, and nil for keys with no base record).
type Reducer interface {
	Reduce(ctx *TaskContext, key []byte, master []byte, values *Values) error
}

// Combiner performs map-side pre-aggregation: after a map task finishes,
// its output records are grouped by key per partition and each group is
// replaced by the combiner's output, reducing shuffle volume at the cost
// of extra map-side CPU (Hadoop's combiner). The paper evaluated
// combiners for FFMR and found them counterproductive ("we do not use
// any combiners as we found worse performance", Section IV-B footnote);
// the engine supports them so that finding can be reproduced.
type Combiner interface {
	// Combine receives one key's values from a single map task and
	// returns the replacement values.
	Combine(key []byte, values [][]byte) ([][]byte, error)
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(key []byte, values [][]byte) ([][]byte, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key []byte, values [][]byte) ([][]byte, error) {
	return f(key, values)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, key, value []byte) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, key, value []byte) error { return f(ctx, key, value) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key, master []byte, values *Values) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key, master []byte, values *Values) error {
	return f(ctx, key, master, values)
}

// Job describes one MapReduce round: inputs, output location, the map and
// reduce functions, and engine options. It corresponds to the job object
// configured in Fig. 2 of the paper.
type Job struct {
	// Name labels the job in errors and traces.
	Name string
	// Round is the multi-round driver's round number, exposed to tasks.
	Round int
	// Inputs are DFS file names; each is split into map tasks at record
	// boundaries, one task per (approximately) one DFS block.
	Inputs []string
	// OutputPrefix is where reducer output partitions are written, as
	// OutputPrefix + "part-NNNNN". Existing files under the prefix are
	// removed first, as Hadoop requires a fresh output directory.
	OutputPrefix string
	// NumReducers is the number of reduce tasks (and output partitions).
	NumReducers int
	// NewMapper and NewReducer create one instance per task.
	NewMapper func() Mapper
	// NewReducer may be nil for map-only jobs; mapper emissions are then
	// written directly, one output partition per map task.
	NewReducer func() Reducer
	// NewCombiner, if non-nil, pre-aggregates each map task's output per
	// key before the shuffle.
	NewCombiner func() Combiner
	// Speculative enables backup attempts for straggling tasks, which
	// Hadoop runs by default. It is incompatible with Schimmy (a backup
	// reduce attempt could double-write the partition-aligned output,
	// which is why the paper's deployment disables it); the engine
	// rejects the combination.
	Speculative bool
	// SideFiles are DFS files loaded once and broadcast read-only to all
	// tasks (the paper's AugmentedEdges list is distributed this way).
	SideFiles []string
	// Schimmy enables the Lin & Schatz schimmy pattern: reducers
	// merge-join the shuffled stream against the partition-aligned base
	// files SchimmyBase + "part-NNNNN" instead of receiving master
	// records through the shuffle.
	Schimmy bool
	// SchimmyBase is the output prefix of the previous round, which must
	// have been produced with the same NumReducers and partitioner.
	SchimmyBase string
	// Service is an opaque handle exposed to tasks via TaskContext.
	// Service handles are process-local (function values, live clients);
	// a distributed backend ignores them and reconstructs the equivalent
	// handle on each worker from Spec.Params.
	Service any
	// Spec describes the job's code to a distributed backend: a kind
	// name registered with the backend's worker-side registry plus the
	// opaque parameters from which a worker reconstructs the job's
	// mapper, reducer, combiner and service handle. A job with a nil
	// Spec can only run on the built-in simulated engine.
	Spec *JobSpec
	// Parent, if non-nil, is the trace span under which the engine
	// records this job's span (the driver passes its round span).
	Parent *trace.Span
}

// JobSpec is the serializable description of a job's code, the unit a
// distributed backend ships to workers (Hadoop ships a job jar plus a
// serialized configuration; here the worker binary already links the
// code, so the spec is a registered kind name plus parameters).
type JobSpec struct {
	// Kind names a worker-side factory registered for this job type.
	Kind string
	// Params is the kind-specific opaque configuration blob.
	Params []byte
}

// Backend executes jobs on an alternative runtime. The built-in engine
// runs when Cluster.Distributed is nil.
type Backend interface {
	// RunJob executes one validated job to completion. It must produce
	// the same output files and (for deterministic jobs) the same
	// Result counters as the simulated engine.
	RunJob(c *Cluster, job *Job) (*Result, error)
}

func (j *Job) validate() error {
	if j.NewMapper == nil {
		return fmt.Errorf("mapreduce: job %q has no mapper", j.Name)
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("mapreduce: job %q has no inputs", j.Name)
	}
	if j.OutputPrefix == "" {
		return fmt.Errorf("mapreduce: job %q has no output prefix", j.Name)
	}
	if j.NumReducers <= 0 && j.NewReducer != nil {
		return fmt.Errorf("mapreduce: job %q has %d reducers", j.Name, j.NumReducers)
	}
	if j.Schimmy && j.SchimmyBase == "" {
		return fmt.Errorf("mapreduce: job %q enables schimmy without a base", j.Name)
	}
	if j.Schimmy && j.NewReducer == nil {
		return fmt.Errorf("mapreduce: job %q enables schimmy without a reducer", j.Name)
	}
	if j.Schimmy && j.Speculative {
		return fmt.Errorf("mapreduce: job %q combines schimmy with speculative execution "+
			"(backup reduce attempts would double-write partition-aligned output)", j.Name)
	}
	return nil
}

// Result carries the statistics of one executed job. The fields mirror
// the Hadoop counters the paper reports: Map Out (intermediate records),
// Shuffle bytes, and the per-round runtime.
type Result struct {
	// Counters holds the user counters incremented via TaskContext.Inc.
	Counters map[string]int64

	MapTasks    int
	ReduceTasks int

	MapInputRecords  int64
	MapOutputRecords int64
	MapOutputBytes   int64

	// ShuffleBytes is every byte fetched by reducers from map outputs
	// (Hadoop's REDUCE_SHUFFLE_BYTES); InterNodeShuffleBytes is the
	// subset that crossed simulated node boundaries.
	ShuffleBytes          int64
	InterNodeShuffleBytes int64

	// MaxRecordBytes is the largest single intermediate record.
	// MaxGroupBytes is the largest reduce group (one key's master plus
	// all shuffled values) — the paper's "size of the biggest record":
	// in FF1 the group with key = t carries every candidate augmenting
	// path and dominates reducer memory, which is what FF2's aug_proc
	// eliminates.
	MaxRecordBytes int64
	MaxGroupBytes  int64

	ReduceOutputRecords int64
	OutputBytes         int64
	InputBytes          int64

	// Out-of-core shuffle statistics, all zero on the in-memory path
	// (Cluster.MemoryBudget == 0). Spills counts map-side sort+write
	// cycles; SpilledBytes is the framed (uncompressed) bytes they wrote;
	// MergePasses counts reduce-side merge passes (including each reduce
	// task's final streaming pass); MaxMergeFanIn is the largest number
	// of segments any single merge pass read.
	Spills        int64
	SpilledBytes  int64
	MergePasses   int64
	MaxMergeFanIn int64

	// WallTime is the measured host execution time of the job;
	// SimTime is the modelled cluster time (see CostModel).
	WallTime time.Duration
	SimTime  time.Duration
}

// Counter returns a user counter by name (0 when absent), mirroring
// job.getCounters().getValue() in Fig. 2 of the paper.
func (r *Result) Counter(name string) int64 { return r.Counters[name] }

// Counters is the job-scoped set of named counters shared by a job's
// tasks (Hadoop's custom counters). It is a thin veneer over a
// trace.Registry, so the same typed counter objects back both the
// Hadoop-style API the tasks use and the trace/metrics exporters.
type Counters struct {
	reg *trace.Registry
}

// NewCounters creates an empty counter set backed by a fresh registry.
func NewCounters() *Counters { return NewCountersIn(trace.NewRegistry()) }

// NewCountersIn creates a counter set backed by an existing registry,
// letting a caller aggregate several jobs' counters in one place.
func NewCountersIn(reg *trace.Registry) *Counters {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	return &Counters{reg: reg}
}

// Add increments a named counter.
func (c *Counters) Add(name string, delta int64) { c.reg.Counter(name).Add(delta) }

// Get returns a counter's value.
func (c *Counters) Get(name string) int64 { return c.reg.Counter(name).Value() }

// Registry exposes the backing typed registry.
func (c *Counters) Registry() *trace.Registry { return c.reg }

// Snapshot copies all counters into a plain map.
func (c *Counters) Snapshot() map[string]int64 { return c.reg.CounterSnapshot() }

// CostModel converts measured work and byte counts into a simulated
// cluster runtime. Defaults approximate the paper's cluster: commodity
// nodes with SATA disks (~100 MB/s), 1 GbE (~110 MB/s full duplex), and
// tens of seconds of per-job framework overhead (the paper observes ~15
// minutes minimum per round at their scale; scaled-down graphs here keep
// overhead proportionally smaller by default).
type CostModel struct {
	// RoundOverhead is fixed per-job scheduling/setup cost.
	RoundOverhead time.Duration
	// TaskOverhead is fixed per-task launch cost.
	TaskOverhead time.Duration
	// DiskBytesPerSec is per-node disk bandwidth for DFS reads/writes.
	DiskBytesPerSec float64
	// NetBytesPerSec is per-node network bandwidth for shuffling.
	NetBytesPerSec float64
	// CPUFactor scales measured task CPU time into simulated time
	// (1.0 = host speed).
	CPUFactor float64
	// StragglerProb is the probability that a task attempt runs slow
	// (a common cluster pathology Hadoop's speculative execution exists
	// to mask); StragglerFactor is the slowdown multiplier applied to a
	// straggling attempt's simulated cost. With Job.Speculative the
	// model charges the better of two attempt draws per task.
	StragglerProb   float64
	StragglerFactor float64
}

// DefaultCostModel returns the Hadoop-like cost model described above.
func DefaultCostModel() CostModel {
	return CostModel{
		RoundOverhead:   10 * time.Second,
		TaskOverhead:    100 * time.Millisecond,
		DiskBytesPerSec: 100e6,
		NetBytesPerSec:  110e6,
		CPUFactor:       1.0,
		StragglerProb:   0.05,
		StragglerFactor: 3.0,
	}
}

// Faults configures failure injection and retry behaviour, emulating
// Hadoop's task-attempt fault tolerance.
type Faults struct {
	// MaxAttempts is the number of attempts per task before the job
	// fails (Hadoop's mapreduce.map.maxattempts, default 4 there;
	// default 1 here so tests see errors immediately unless they opt in).
	MaxAttempts int
	// FailureRate injects a probability that any task attempt dies
	// before doing work (emulating worker crashes). Injection is
	// deterministic in Seed, the job name, the task and the attempt.
	FailureRate float64
	// DiskFailureRate injects a probability that any single spill write
	// fails mid-task (emulating a local-disk error on the tasktracker).
	// Only meaningful on the out-of-core shuffle path
	// (Cluster.MemoryBudget > 0); the failed attempt's partial spill
	// state is discarded and the task retried.
	DiskFailureRate float64
	// WorkerCrashRate injects a probability that the worker holding a
	// task lease dies at that task's start: it stops heartbeating,
	// refuses further work, and its locally stored map outputs become
	// unreachable, so the master must reassign the leased task to
	// another worker and re-execute any map tasks whose outputs the dead
	// worker held. Only meaningful on a distributed backend
	// (Cluster.Distributed != nil); the simulated engine has no workers
	// to kill and ignores it. Injection is deterministic in Seed, the
	// job name, the task and the attempt.
	WorkerCrashRate float64
	// Seed drives the injection hash.
	Seed int64
}

// ZeroCostModel returns a model with no framework overhead and infinite
// bandwidth; SimTime then reflects only measured computation. Used by
// ablation benchmarks to separate algorithmic work from MR overhead.
func ZeroCostModel() CostModel {
	return CostModel{CPUFactor: 1.0}
}
