package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ffmr/internal/dfs"
	"ffmr/internal/spill"
)

func newTestCluster(nodes, slots, blockSize int) *Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: blockSize, Replication: 2})
	c := NewCluster(nodes, slots, fs)
	c.Cost = ZeroCostModel()
	return c
}

// writeRecords stores framed records in the cluster's FS.
func writeRecords(t *testing.T, c *Cluster, name string, kvs [][2]string) {
	t.Helper()
	var w dfs.RecordWriter
	for _, kv := range kvs {
		w.Append([]byte(kv[0]), []byte(kv[1]))
	}
	if err := c.FS.WriteFile(name, w.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// readAll returns all output records under a prefix as "k=v" strings,
// sorted.
func readAll(t *testing.T, c *Cluster, prefix string) []string {
	t.Helper()
	var out []string
	for _, name := range c.FS.List(prefix) {
		data, err := c.FS.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		r := dfs.NewRecordReader(data)
		for {
			k, v, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, fmt.Sprintf("%s=%s", k, v))
		}
	}
	sort.Strings(out)
	return out
}

// wordCount is the canonical MapReduce example; values are texts.
func wordCountJob(c *Cluster, inputs []string) *Job {
	return &Job{
		Name:         "wordcount",
		Inputs:       inputs,
		OutputPrefix: "wc-out/",
		NumReducers:  3,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				for _, w := range strings.Fields(string(value)) {
					ctx.Emit([]byte(w), []byte("1"))
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				n := 0
				for values.Next() != nil {
					n++
				}
				ctx.Emit(key, []byte(strconv.Itoa(n)))
				ctx.Inc("groups", 1)
				return nil
			})
		},
	}
}

func TestWordCount(t *testing.T) {
	c := newTestCluster(3, 2, 64)
	writeRecords(t, c, "in/0", [][2]string{
		{"1", "the quick brown fox"},
		{"2", "the lazy dog"},
		{"3", "the fox"},
	})
	res, err := c.Run(wordCountJob(c, []string{"in/0"}))
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, c, "wc-out/")
	want := []string{"brown=1", "dog=1", "fox=2", "lazy=1", "quick=1", "the=3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if res.Counter("groups") != 6 {
		t.Errorf("groups counter = %d, want 6", res.Counter("groups"))
	}
	if res.MapInputRecords != 3 {
		t.Errorf("map input records = %d, want 3", res.MapInputRecords)
	}
	if res.MapOutputRecords != 9 {
		t.Errorf("map output records = %d, want 9", res.MapOutputRecords)
	}
	if res.ShuffleBytes <= 0 {
		t.Error("no shuffle bytes recorded")
	}
}

func TestMultiFileSplitsAndLocality(t *testing.T) {
	// Small block size so one file yields many splits; results must be
	// identical regardless of split boundaries.
	c := newTestCluster(4, 3, 32)
	var kvs [][2]string
	for i := 0; i < 200; i++ {
		kvs = append(kvs, [2]string{fmt.Sprintf("k%03d", i%17), "payload payload"})
	}
	writeRecords(t, c, "in/big", kvs)
	res, err := c.Run(&Job{
		Name:         "count",
		Inputs:       []string{"in/big"},
		OutputPrefix: "out/",
		NumReducers:  4,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, []byte("1"))
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				ctx.Emit(key, []byte(strconv.Itoa(values.Len())))
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 2 {
		t.Errorf("expected multiple map tasks, got %d", res.MapTasks)
	}
	got := readAll(t, c, "out/")
	if len(got) != 17 {
		t.Fatalf("got %d groups, want 17: %v", len(got), got)
	}
	for _, kv := range got {
		parts := strings.Split(kv, "=")
		n, _ := strconv.Atoi(parts[1])
		// 200 records spread over 17 keys: each key 11 or 12.
		if n != 11 && n != 12 {
			t.Errorf("key %s count = %d", parts[0], n)
		}
	}
}

func TestReducersSeeSortedValues(t *testing.T) {
	c := newTestCluster(2, 4, 64)
	writeRecords(t, c, "in/0", [][2]string{
		{"a", "z"}, {"a", "m"}, {"a", "a"}, {"b", "2"}, {"b", "1"},
	})
	var mu struct {
		got []string
	}
	_, err := c.Run(&Job{
		Name:         "sorted",
		Inputs:       []string{"in/0"},
		OutputPrefix: "out/",
		NumReducers:  1,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				var vals []string
				for {
					v := values.Next()
					if v == nil {
						break
					}
					vals = append(vals, string(v))
				}
				mu.got = append(mu.got, fmt.Sprintf("%s:%s", key, strings.Join(vals, ",")))
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(mu.got)
	want := []string{"a:a,m,z", "b:1,2"}
	if fmt.Sprint(mu.got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", mu.got, want)
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	writeRecords(t, c, "in/0", [][2]string{{"k1", "v1"}, {"k2", "v2"}})
	res, err := c.Run(&Job{
		Name:         "identity",
		Inputs:       []string{"in/0"},
		OutputPrefix: "out/",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffleBytes != 0 {
		t.Errorf("map-only job shuffled %d bytes", res.ShuffleBytes)
	}
	got := readAll(t, c, "out/")
	want := []string{"k1=v1", "k2=v2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSchimmyMergeJoin(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	// Build a base via a first job (so partition alignment holds).
	writeRecords(t, c, "in/0", [][2]string{
		{"a", "base-a"}, {"b", "base-b"}, {"c", "base-c"},
	})
	identity := func() Mapper {
		return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
			ctx.Emit(key, value)
			return nil
		})
	}
	passThrough := func() Reducer {
		return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
			v := values.Next()
			ctx.Emit(key, v)
			return nil
		})
	}
	if _, err := c.Run(&Job{
		Name: "seed", Inputs: []string{"in/0"}, OutputPrefix: "base/",
		NumReducers: 2, NewMapper: identity, NewReducer: passThrough,
	}); err != nil {
		t.Fatal(err)
	}

	// Second job: mappers emit updates for a and b only ("a" gets one,
	// "b" two); the schimmy reduce must see base values for all three
	// keys including untouched "c".
	writeRecords(t, c, "in/1", [][2]string{
		{"a", "u1"}, {"b", "u2"}, {"b", "u3"},
	})
	_, err := c.Run(&Job{
		Name: "apply", Inputs: []string{"in/1"}, OutputPrefix: "out/",
		NumReducers: 2, Schimmy: true, SchimmyBase: "base/",
		NewMapper: identity,
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				var ups []string
				for {
					v := values.Next()
					if v == nil {
						break
					}
					ups = append(ups, string(v))
				}
				ctx.Emit(key, []byte(fmt.Sprintf("%s+%s", master, strings.Join(ups, "|"))))
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, c, "out/")
	want := []string{"a=base-a+u1", "b=base-b+u2|u3", "c=base-c+"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSchimmyRequiresBase(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	_, err := c.Run(&Job{
		Name: "bad", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 1, Schimmy: true, SchimmyBase: "missing/",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return nil
			})
		},
	})
	if err == nil {
		t.Fatal("job with missing schimmy base succeeded")
	}
}

func TestJobValidation(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	mapper := func() Mapper {
		return MapperFunc(func(ctx *TaskContext, key, value []byte) error { return nil })
	}
	tests := []struct {
		name string
		job  Job
	}{
		{"no mapper", Job{Inputs: []string{"in/0"}, OutputPrefix: "o/"}},
		{"no inputs", Job{NewMapper: mapper, OutputPrefix: "o/"}},
		{"no output", Job{NewMapper: mapper, Inputs: []string{"in/0"}}},
		{"schimmy without base", Job{NewMapper: mapper, Inputs: []string{"in/0"},
			OutputPrefix: "o/", Schimmy: true, NumReducers: 1,
			NewReducer: func() Reducer { return ReducerFunc(nil) }}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Run(&tc.job); err == nil {
				t.Error("invalid job accepted")
			}
		})
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}, {"b", "y"}})
	_, err := c.Run(&Job{
		Name: "failing", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 1,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				if string(key) == "b" {
					return fmt.Errorf("boom")
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return nil
			})
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("mapper error not propagated: %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	_, err := c.Run(&Job{
		Name: "failing-reduce", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 1,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return fmt.Errorf("reduce boom")
			})
		},
	})
	if err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Fatalf("reducer error not propagated: %v", err)
	}
}

func TestSideFilesBroadcast(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "1"}, {"b", "2"}})
	if err := c.FS.WriteFile("side/config", []byte("MULTIPLIER")); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(&Job{
		Name: "side", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 1, SideFiles: []string{"side/config"},
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				if string(ctx.SideFile("side/config")) != "MULTIPLIER" {
					return fmt.Errorf("side file missing in mapper")
				}
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				if string(ctx.SideFile("side/config")) != "MULTIPLIER" {
					return fmt.Errorf("side file missing in reducer")
				}
				ctx.Emit(key, values.Next())
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceOutputRecords != 2 {
		t.Errorf("reduce output records = %d", res.ReduceOutputRecords)
	}
}

func TestCountersAreSummed(t *testing.T) {
	c := newTestCluster(3, 2, 16)
	var kvs [][2]string
	for i := 0; i < 50; i++ {
		kvs = append(kvs, [2]string{fmt.Sprintf("k%02d", i), "v"})
	}
	writeRecords(t, c, "in/0", kvs)
	res, err := c.Run(&Job{
		Name: "counts", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 2,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Inc("records", 1)
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				ctx.Inc("records", 1)
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counter("records"); got != 100 {
		t.Errorf("records counter = %d, want 100 (50 map + 50 reduce)", got)
	}
	if res.Counter("missing") != 0 {
		t.Error("missing counter is nonzero")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Two identical runs must produce byte-identical outputs despite
	// parallel task scheduling (sorting by key and value guarantees it).
	run := func() []string {
		c := newTestCluster(4, 4, 16)
		var kvs [][2]string
		for i := 0; i < 100; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i)})
		}
		writeRecords(t, c, "in/0", kvs)
		_, err := c.Run(&Job{
			Name: "det", Inputs: []string{"in/0"}, OutputPrefix: "out/",
			NumReducers: 3,
			NewMapper: func() Mapper {
				return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
					ctx.Emit(key, value)
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
					var sb strings.Builder
					for {
						v := values.Next()
						if v == nil {
							break
						}
						sb.Write(v)
					}
					ctx.Emit(key, []byte(sb.String()))
					return nil
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return readAll(t, c, "out/")
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("outputs differ across identical runs")
	}
}

func TestSimTimeRespondsToCostModel(t *testing.T) {
	mk := func(cost CostModel) *Result {
		c := newTestCluster(2, 2, 64)
		c.Cost = cost
		writeRecords(t, c, "in/0", [][2]string{{"a", strings.Repeat("x", 1000)}})
		res, err := c.Run(wordCountJob(c, []string{"in/0"}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero := mk(ZeroCostModel())
	real := mk(DefaultCostModel())
	if real.SimTime <= zero.SimTime {
		t.Errorf("realistic cost model (%v) not slower than zero model (%v)",
			real.SimTime, zero.SimTime)
	}
	if real.SimTime < 10*1e9/2 {
		t.Errorf("realistic model missing round overhead: %v", real.SimTime)
	}
}

func TestMoreNodesReduceSimTime(t *testing.T) {
	run := func(nodes int) *Result {
		c := newTestCluster(nodes, 2, 256)
		cm := DefaultCostModel()
		cm.RoundOverhead = 0
		cm.TaskOverhead = 0
		c.Cost = cm
		var kvs [][2]string
		for i := 0; i < 400; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%03d", i), strings.Repeat("p", 200)})
		}
		writeRecords(t, c, "in/0", kvs)
		res, err := c.Run(wordCountJob(c, []string{"in/0"}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1)
	big := run(8)
	if big.SimTime >= small.SimTime {
		t.Errorf("8 nodes (%v) not faster than 1 node (%v)", big.SimTime, small.SimTime)
	}
}

func TestMaxRecordBytes(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	big := strings.Repeat("B", 5000)
	res, err := c.Run(&Job{
		Name: "big-record", Inputs: []string{"in/0"}, OutputPrefix: "out/",
		NumReducers: 1,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit([]byte("k"), []byte(big))
				ctx.Emit([]byte("k"), []byte("small"))
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRecordBytes < 5000 {
		t.Errorf("max record bytes = %d, want >= 5000", res.MaxRecordBytes)
	}
}

func TestMaxGroupBytes(t *testing.T) {
	// One hot key receives many values; its group must dominate
	// MaxGroupBytes while MaxRecordBytes stays small.
	c := newTestCluster(2, 2, 1024)
	var kvs [][2]string
	for i := 0; i < 100; i++ {
		kvs = append(kvs, [2]string{"hot", fmt.Sprintf("value-%03d", i)})
	}
	kvs = append(kvs, [2]string{"cold", "x"})
	writeRecords(t, c, "in/0", kvs)
	res, err := c.Run(identityJob([]string{"in/0"}, "out/"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGroupBytes < 100*10 {
		t.Errorf("max group bytes = %d, want >= 1000 (the hot key's group)", res.MaxGroupBytes)
	}
	if res.MaxRecordBytes >= res.MaxGroupBytes {
		t.Errorf("max record %d not below max group %d", res.MaxRecordBytes, res.MaxGroupBytes)
	}
}

func TestPartitionStability(t *testing.T) {
	// The same key must always land in the same partition; this is what
	// makes the schimmy pattern sound across rounds.
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p := partition(key, 7)
		for r := 0; r < 5; r++ {
			if partition(key, 7) != p {
				t.Fatalf("partition unstable for %s", key)
			}
		}
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestCounterFileRoundTrip(t *testing.T) {
	in := map[string]int64{"source move": 42, "sink move": 0, "neg": -17}
	out, err := DecodeCounterFile(EncodeCounterFile(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d counters, want %d", len(out), len(in))
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("counter %s = %d, want %d", k, out[k], v)
		}
	}
	if _, err := DecodeCounterFile([]byte{0xFF}); err == nil {
		t.Error("corrupt counter file accepted")
	}
}

func TestEmptyInputRunsCleanly(t *testing.T) {
	c := newTestCluster(2, 2, 64)
	if err := c.FS.WriteFile("in/empty", nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(&Job{
		Name: "empty", Inputs: []string{"in/empty"}, OutputPrefix: "out/",
		NumReducers: 2,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapInputRecords != 0 || res.MapTasks != 0 {
		t.Errorf("empty input produced work: %+v", res)
	}
}

func TestFramedSizeMatchesWriter(t *testing.T) {
	key := []byte("some-key")
	val := bytes.Repeat([]byte("v"), 300)
	var w dfs.RecordWriter
	w.Append(key, val)
	if got := framedSize(key, val); got != int64(w.Len()) {
		t.Errorf("framedSize = %d, writer length = %d", got, w.Len())
	}
	var buf [8]byte
	n := binary.PutUvarint(buf[:], 300)
	if spill.UvarintLen(300) != n {
		t.Errorf("UvarintLen(300) = %d, want %d", spill.UvarintLen(300), n)
	}
}
