package mapreduce

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ffmr/internal/trace"
)

// spillTestJob is a shuffle-heavy job: each input record fans out to
// several intermediate records so small memory budgets force multiple
// spills per map task.
func spillTestJob(inputs []string) *Job {
	return &Job{
		Name:         "spilltest",
		Inputs:       inputs,
		OutputPrefix: "sp-out/",
		NumReducers:  3,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				for _, w := range strings.Fields(string(value)) {
					ctx.Emit([]byte(w), []byte(fmt.Sprintf("%s@%s", key, w)))
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				n := 0
				for values.Next() != nil {
					n++
				}
				ctx.Emit(key, []byte(strconv.Itoa(n)))
				ctx.Inc("groups", 1)
				return nil
			})
		},
	}
}

// writeSpillInput generates enough skewed text records for multi-spill
// runs at small budgets.
func writeSpillInput(t *testing.T, c *Cluster, name string, n int) {
	t.Helper()
	var kvs [][2]string
	for i := 0; i < n; i++ {
		kvs = append(kvs, [2]string{
			fmt.Sprintf("k%04d", i),
			fmt.Sprintf("alpha bravo-%d charlie delta-%d echo foxtrot-%d", i%7, i%13, i%29),
		})
	}
	writeRecords(t, c, name, kvs)
}

// comparableStats extracts the Result fields that must be identical
// between the in-memory and out-of-core shuffle paths.
func comparableStats(res *Result) map[string]int64 {
	return map[string]int64{
		"map_tasks":        int64(res.MapTasks),
		"reduce_tasks":     int64(res.ReduceTasks),
		"map_in_recs":      res.MapInputRecords,
		"map_out_recs":     res.MapOutputRecords,
		"map_out_bytes":    res.MapOutputBytes,
		"shuffle_bytes":    res.ShuffleBytes,
		"inter_node_bytes": res.InterNodeShuffleBytes,
		"max_record_bytes": res.MaxRecordBytes,
		"max_group_bytes":  res.MaxGroupBytes,
		"reduce_out_recs":  res.ReduceOutputRecords,
		"output_bytes":     res.OutputBytes,
		"input_bytes":      res.InputBytes,
	}
}

func TestSpillPathMatchesInMemory(t *testing.T) {
	run := func(budget int64, compress bool) (*Cluster, *Result, []string) {
		c := newTestCluster(3, 2, 512)
		c.MemoryBudget = budget
		c.SpillDir = t.TempDir()
		c.SpillCompress = compress
		c.MergeFanIn = 2
		writeSpillInput(t, c, "in/0", 120)
		res, err := c.Run(spillTestJob([]string{"in/0"}))
		if err != nil {
			t.Fatal(err)
		}
		return c, res, readAll(t, c, "sp-out/")
	}

	memC, memRes, memOut := run(0, false)
	_ = memC
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			_, spRes, spOut := run(1024, compress)
			if !reflect.DeepEqual(memOut, spOut) {
				t.Fatalf("outputs diverge: mem %d records, spill %d records", len(memOut), len(spOut))
			}
			if mem, sp := comparableStats(memRes), comparableStats(spRes); !reflect.DeepEqual(mem, sp) {
				t.Fatalf("stats diverge:\n mem   %v\n spill %v", mem, sp)
			}
			if memRes.Counter("groups") != spRes.Counter("groups") {
				t.Fatalf("groups counter diverges: %d vs %d",
					memRes.Counter("groups"), spRes.Counter("groups"))
			}
			if memRes.Spills != 0 || memRes.MergePasses != 0 {
				t.Fatalf("in-memory path reported spill work: %d spills, %d merge passes",
					memRes.Spills, memRes.MergePasses)
			}
			if spRes.Spills < 2*int64(spRes.MapTasks) {
				t.Errorf("spills = %d over %d map tasks, want >= 2 per task",
					spRes.Spills, spRes.MapTasks)
			}
			if spRes.SpilledBytes != spRes.MapOutputBytes {
				t.Errorf("spilled bytes = %d, map output bytes = %d (no combiner: must match)",
					spRes.SpilledBytes, spRes.MapOutputBytes)
			}
			if spRes.MergePasses < 2 {
				t.Errorf("merge passes = %d, want >= 2", spRes.MergePasses)
			}
			if spRes.MaxMergeFanIn > 2 {
				t.Errorf("max merge fan-in = %d, want <= configured 2", spRes.MaxMergeFanIn)
			}
		})
	}
}

func TestSpillWithCombinerMatchesInMemory(t *testing.T) {
	// A sum combiner is associative, so per-spill combining (spill path)
	// and whole-task combining (in-memory path) must yield identical
	// reduce output even though intermediate record counts legitimately
	// differ (Hadoop combines per spill too).
	sum := func() Combiner {
		return CombinerFunc(func(key []byte, values [][]byte) ([][]byte, error) {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return nil, err
				}
				total += n
			}
			return [][]byte{[]byte(strconv.Itoa(total))}, nil
		})
	}
	run := func(budget int64) []string {
		c := newTestCluster(3, 2, 256)
		c.MemoryBudget = budget
		c.SpillDir = t.TempDir()
		c.MergeFanIn = 2
		var kvs [][2]string
		for i := 0; i < 150; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%04d", i), fmt.Sprintf("w%d w%d w%d", i%5, i%3, i%5)})
		}
		writeRecords(t, c, "in/0", kvs)
		job := wordCountJob(c, []string{"in/0"})
		job.NewReducer = func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				total := 0
				for v := values.Next(); v != nil; v = values.Next() {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					total += n
				}
				ctx.Emit(key, []byte(strconv.Itoa(total)))
				return nil
			})
		}
		job.NewCombiner = sum
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
		return readAll(t, c, "wc-out/")
	}
	memOut := run(0)
	spOut := run(512)
	if !reflect.DeepEqual(memOut, spOut) {
		t.Fatalf("combiner outputs diverge:\n mem   %v\n spill %v", memOut, spOut)
	}
}

func TestSpillDiskFaultRetry(t *testing.T) {
	run := func(diskRate float64) (*Result, []string, string) {
		c := newTestCluster(3, 2, 512)
		c.MemoryBudget = 1024
		c.SpillDir = t.TempDir()
		c.MergeFanIn = 2
		c.Fault = Faults{MaxAttempts: 6, DiskFailureRate: diskRate, Seed: 42}
		writeSpillInput(t, c, "in/0", 120)
		res, err := c.Run(spillTestJob([]string{"in/0"}))
		if err != nil {
			t.Fatal(err)
		}
		return res, readAll(t, c, "sp-out/"), c.SpillDir
	}

	cleanRes, cleanOut, _ := run(0)
	faultRes, faultOut, spillDir := run(0.15)

	if !reflect.DeepEqual(cleanOut, faultOut) {
		t.Fatal("output diverges under injected disk failures")
	}
	if !reflect.DeepEqual(comparableStats(cleanRes), comparableStats(faultRes)) {
		t.Fatalf("stats diverge under injected disk failures:\n clean %v\n fault %v",
			comparableStats(cleanRes), comparableStats(faultRes))
	}
	if faultRes.Counter("task failures") == 0 {
		t.Error("no task failures recorded despite injected disk failure rate")
	}
	// The per-job run store is removed when the job finishes, so the
	// spill dir must hold no orphan state from failed attempts.
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill dir holds %d orphan entries after job completion", len(entries))
	}
}

func TestSpillMetricsReachTracer(t *testing.T) {
	tr := trace.New()
	c := newTestCluster(3, 2, 512)
	c.Tracer = tr
	c.MemoryBudget = 1024
	c.SpillDir = t.TempDir()
	c.MergeFanIn = 2
	writeSpillInput(t, c, "in/0", 120)
	res, err := c.Run(spillTestJob([]string{"in/0"}))
	if err != nil {
		t.Fatal(err)
	}
	reg := tr.Registry()
	if got := reg.Counter(trace.CounterSpills).Value(); got != res.Spills {
		t.Errorf("registry spills = %d, result = %d", got, res.Spills)
	}
	if got := reg.Counter(trace.CounterSpilledBytes).Value(); got != res.SpilledBytes {
		t.Errorf("registry spilled bytes = %d, result = %d", got, res.SpilledBytes)
	}
	if got := reg.Counter(trace.CounterMergePasses).Value(); got != res.MergePasses {
		t.Errorf("registry merge passes = %d, result = %d", got, res.MergePasses)
	}
	if got := reg.Gauge(trace.GaugeMergeFanIn).Max(); got != res.MaxMergeFanIn {
		t.Errorf("registry merge fan-in = %d, result = %d", got, res.MaxMergeFanIn)
	}
	if res.Spills == 0 || res.SpilledBytes == 0 || res.MergePasses == 0 {
		t.Errorf("spill metrics not populated: %+v", res)
	}
}

func TestWriteMapOnlyOutputModelsTaskTime(t *testing.T) {
	c := newTestCluster(2, 2, 1024)
	writeRecords(t, c, "in/0", [][2]string{{"b", "2"}, {"a", "1"}, {"c", "3"}})
	job := &Job{
		Name:         "maponly",
		Inputs:       []string{"in/0"},
		OutputPrefix: "mo-out/",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
	}
	sh := &shuffleData{mem: [][]kvRec{
		{{key: []byte("b"), value: []byte("2")}, {key: []byte("a"), value: []byte("1")}},
		{{key: []byte("c"), value: []byte("3")}},
	}}
	res := &Result{}
	durs, fetch, err := c.writeMapOnlyOutput(job, sh, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != 2 || len(fetch) != 2 {
		t.Fatalf("got %d durations / %d fetch entries, want 2 / 2", len(durs), len(fetch))
	}
	for i := range durs {
		if durs[i] <= 0 {
			t.Errorf("task %d write duration = %v, want > 0", i, durs[i])
		}
		if fetch[i] != 0 {
			t.Errorf("task %d fetch = %d, want 0 (map-only jobs shuffle nothing)", i, fetch[i])
		}
	}
	if res.ReduceOutputRecords != 3 {
		t.Errorf("output records = %d, want 3", res.ReduceOutputRecords)
	}

	// End to end: the simulated time of a map-only job must charge the
	// map-side task overhead once, not again for the output-write pseudo
	// phase.
	c2 := newTestCluster(1, 1, 1024)
	c2.Cost = CostModel{TaskOverhead: time.Hour, CPUFactor: 1}
	writeRecords(t, c2, "in/0", [][2]string{{"a", "1"}})
	r2, err := c2.Run(&Job{
		Name:         "maponly-sim",
		Inputs:       []string{"in/0"},
		OutputPrefix: "mo2-out/",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SimTime < time.Hour || r2.SimTime >= 2*time.Hour {
		t.Errorf("map-only SimTime = %v, want one task overhead (>= 1h, < 2h)", r2.SimTime)
	}
}
