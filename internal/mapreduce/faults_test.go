package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// identityJob emits every input record unchanged through a single
// reducer group pass-through.
func identityJob(inputs []string, out string) *Job {
	return &Job{
		Name: "identity", Inputs: inputs, OutputPrefix: out, NumReducers: 2,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				ctx.Emit(key, value)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				for {
					v := values.Next()
					if v == nil {
						return nil
					}
					ctx.Emit(key, v)
				}
			})
		},
	}
}

func TestInjectedFailuresAreRetried(t *testing.T) {
	c := newTestCluster(3, 2, 32)
	c.Fault = Faults{MaxAttempts: 10, FailureRate: 0.4, Seed: 5}
	var kvs [][2]string
	for i := 0; i < 60; i++ {
		kvs = append(kvs, [2]string{fmt.Sprintf("k%02d", i), "v"})
	}
	writeRecords(t, c, "in/0", kvs)
	res, err := c.Run(identityJob([]string{"in/0"}, "out/"))
	if err != nil {
		t.Fatalf("job with retries failed: %v", err)
	}
	if res.Counter("task failures") == 0 {
		t.Error("no failures injected at 40% rate")
	}
	got := readAll(t, c, "out/")
	if len(got) != 60 {
		t.Fatalf("lost records under retries: got %d, want 60", len(got))
	}
}

func TestOutputIdenticalWithAndWithoutFailures(t *testing.T) {
	run := func(fault Faults) []string {
		c := newTestCluster(3, 2, 32)
		c.Fault = fault
		var kvs [][2]string
		for i := 0; i < 80; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%02d", i%11), fmt.Sprintf("v%d", i)})
		}
		writeRecords(t, c, "in/0", kvs)
		if _, err := c.Run(identityJob([]string{"in/0"}, "out/")); err != nil {
			t.Fatal(err)
		}
		return readAll(t, c, "out/")
	}
	clean := run(Faults{})
	faulty := run(Faults{MaxAttempts: 20, FailureRate: 0.5, Seed: 9})
	if fmt.Sprint(clean) != fmt.Sprint(faulty) {
		t.Fatal("fault tolerance changed job output")
	}
}

func TestJobFailsAfterMaxAttempts(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	c.Fault = Faults{MaxAttempts: 3, FailureRate: 1.0, Seed: 1} // always fails
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	_, err := c.Run(identityJob([]string{"in/0"}, "out/"))
	if err == nil {
		t.Fatal("job succeeded despite certain failure")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not mention attempts: %v", err)
	}
}

func TestDeterministicUserErrorNotMaskedByRetries(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	c.Fault = Faults{MaxAttempts: 4}
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	attempts := 0
	_, err := c.Run(&Job{
		Name: "always-bad", Inputs: []string{"in/0"}, OutputPrefix: "out/", NumReducers: 1,
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
				attempts++
				return fmt.Errorf("deterministic bug")
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
				return nil
			})
		},
	})
	if err == nil || !strings.Contains(err.Error(), "deterministic bug") {
		t.Fatalf("expected the user error to surface, got %v", err)
	}
	if attempts != 4 {
		t.Errorf("mapper ran %d times, want 4 (MaxAttempts)", attempts)
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	run := func(useCombiner bool) *Result {
		c := newTestCluster(2, 2, 1<<20) // one split: all aggregation local
		var kvs [][2]string
		for i := 0; i < 300; i++ {
			kvs = append(kvs, [2]string{"k", fmt.Sprintf("%d", i%5)})
		}
		writeRecords(t, c, "in/0", kvs)
		job := &Job{
			Name: "sum", Inputs: []string{"in/0"}, OutputPrefix: "out/", NumReducers: 2,
			NewMapper: func() Mapper {
				return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
					ctx.Emit(value, []byte("1"))
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
					sum := 0
					for {
						v := values.Next()
						if v == nil {
							break
						}
						n, _ := strconv.Atoi(string(v))
						sum += n
					}
					ctx.Emit(key, []byte(strconv.Itoa(sum)))
					return nil
				})
			},
		}
		if useCombiner {
			job.NewCombiner = func() Combiner {
				return CombinerFunc(func(key []byte, values [][]byte) ([][]byte, error) {
					sum := 0
					for _, v := range values {
						n, _ := strconv.Atoi(string(v))
						sum += n
					}
					return [][]byte{[]byte(strconv.Itoa(sum))}, nil
				})
			}
		}
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	combined := run(true)
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not reduce shuffle: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
	// Results must agree.
	if combined.Counter("combine input records") == 0 {
		t.Error("combine counters missing")
	}
}

func TestCombinerPreservesResults(t *testing.T) {
	runOut := func(useCombiner bool) []string {
		c := newTestCluster(3, 2, 64)
		var kvs [][2]string
		for i := 0; i < 120; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%d", i), fmt.Sprintf("w%d w%d", i%3, i%7)})
		}
		writeRecords(t, c, "in/0", kvs)
		job := wordCountJob(c, []string{"in/0"})
		if useCombiner {
			job.NewCombiner = func() Combiner {
				return CombinerFunc(func(key []byte, values [][]byte) ([][]byte, error) {
					// Word count's combiner: sum the partial counts.
					sum := 0
					for _, v := range values {
						n, _ := strconv.Atoi(string(v))
						sum += n
					}
					return [][]byte{[]byte(strconv.Itoa(sum))}, nil
				})
			}
			// The reducer must then sum counts, not count values; replace.
			job.NewReducer = func() Reducer {
				return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
					sum := 0
					for {
						v := values.Next()
						if v == nil {
							break
						}
						n, _ := strconv.Atoi(string(v))
						sum += n
					}
					ctx.Emit(key, []byte(strconv.Itoa(sum)))
					return nil
				})
			}
		} else {
			job.NewReducer = func() Reducer {
				return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
					sum := 0
					for {
						v := values.Next()
						if v == nil {
							break
						}
						n, _ := strconv.Atoi(string(v))
						sum += n
					}
					ctx.Emit(key, []byte(strconv.Itoa(sum)))
					return nil
				})
			}
		}
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
		return readAll(t, c, "wc-out/")
	}
	if fmt.Sprint(runOut(false)) != fmt.Sprint(runOut(true)) {
		t.Fatal("combiner changed the result")
	}
}

func TestSpeculativeExecutionShortensTail(t *testing.T) {
	run := func(speculative bool) *Result {
		c := newTestCluster(2, 2, 16)
		cm := ZeroCostModel()
		cm.TaskOverhead = 100 * 1e6 // 100ms per task, so stragglers matter
		cm.StragglerProb = 0.3
		cm.StragglerFactor = 10
		c.Cost = cm
		var kvs [][2]string
		for i := 0; i < 100; i++ {
			kvs = append(kvs, [2]string{fmt.Sprintf("k%03d", i), "payload-payload"})
		}
		writeRecords(t, c, "in/0", kvs)
		job := identityJob([]string{"in/0"}, "out/")
		job.Speculative = speculative
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	spec := run(true)
	if spec.SimTime >= plain.SimTime {
		t.Errorf("speculative execution did not shorten the tail: %v vs %v",
			spec.SimTime, plain.SimTime)
	}
}

func TestSpeculativeRejectedWithSchimmy(t *testing.T) {
	c := newTestCluster(1, 1, 64)
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	job := identityJob([]string{"in/0"}, "out/")
	job.Schimmy = true
	job.SchimmyBase = "base/"
	job.Speculative = true
	if _, err := c.Run(job); err == nil {
		t.Fatal("schimmy + speculative accepted (the paper disables speculation for schimmy)")
	}
}

func TestInjectHashDeterministicAndSpread(t *testing.T) {
	a := injectHash(1, "job", "map", 3, 0)
	b := injectHash(1, "job", "map", 3, 0)
	if a != b {
		t.Fatal("injectHash not deterministic")
	}
	if injectHash(1, "job", "map", 3, 1) == a && injectHash(1, "job", "map", 4, 0) == a {
		t.Fatal("injectHash ignores task/attempt")
	}
	// Rough uniformity: mean of many draws near 0.5.
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := injectHash(7, "j", "map", i, 0)
		if v < 0 || v >= 1 {
			t.Fatalf("draw %f out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("draw mean %f far from 0.5", mean)
	}
}
