package mapreduce_test

import (
	"fmt"
	"log"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// Setting Cluster.Distributed swaps the in-process simulated engine for
// the distmr backend — here an in-process master/worker harness speaking
// the real wire protocol over loopback TCP. The driver code is identical
// either way; jobs carry a Spec naming their registered kind, which is
// how worker processes reconstruct the mapper and reducer code.
func ExampleCluster_Distributed() {
	h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	fs := dfs.New(dfs.Config{Nodes: 2, BlockSize: 16 << 10, Replication: 1})
	cluster := mapreduce.NewCluster(2, 4, fs)
	cluster.Cost = mapreduce.ZeroCostModel()
	cluster.Distributed = h.Master // every job now runs on the TCP workers

	in := &graph.Input{
		NumVertices: 4, Source: 0, Sink: 3,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 2}, {U: 1, V: 3, Cap: 2},
			{U: 0, V: 2, Cap: 2}, {U: 2, V: 3, Cap: 2},
		},
	}
	res, err := core.Run(cluster, in, core.Options{Variant: core.FF5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("max flow:", res.MaxFlow)
	// Output:
	// max flow: 4
}
