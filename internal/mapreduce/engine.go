package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/obsv"
	"ffmr/internal/spill"
	"ffmr/internal/trace"
)

// Cluster is the simulated Hadoop cluster: a DFS plus a set of nodes each
// running a bounded number of concurrent worker slots. The paper's
// deployment is 20 slave nodes with up to 30 concurrent workers each.
type Cluster struct {
	// Nodes is the number of slave nodes.
	Nodes int
	// SlotsPerNode is the number of concurrent map/reduce workers a node
	// can run (the paper configures 15 map + 15 reduce task slots).
	SlotsPerNode int
	// FS is the distributed file system holding inputs and outputs.
	FS *dfs.FS
	// Cost models how byte counts and measured CPU translate into
	// simulated cluster time.
	Cost CostModel
	// Fault configures task-attempt retries and failure injection.
	Fault Faults
	// Tracer, if non-nil, records job/phase/task-attempt spans for every
	// job the cluster runs. A nil tracer disables tracing at no cost.
	Tracer *trace.Tracer
	// Log receives structured job/attempt events (nil: logging off).
	Log *slog.Logger

	// MemoryBudget, when > 0, bounds each map task's shuffle buffer in
	// framed bytes: a full buffer is sorted and spilled to disk, and
	// reducers stream their partition through a k-way merge over the
	// spill runs instead of materializing it (Hadoop's external
	// sort/merge). 0 keeps the classic unbounded in-memory shuffle.
	MemoryBudget int64
	// SpillDir is where spill runs live when MemoryBudget > 0 (a fresh
	// private dir is created per job; the OS temp dir when empty).
	SpillDir string
	// SpillCompress DEFLATE-compresses spill segments on disk.
	SpillCompress bool
	// MergeFanIn bounds how many segments one reduce-side merge pass
	// reads (Hadoop's io.sort.factor; default spill.DefaultMergeFanIn).
	MergeFanIn int

	// Distributed, when non-nil, executes jobs on an external backend (a
	// real master/worker deployment, see internal/distmr) instead of the
	// in-process simulated engine. Jobs then need a Spec so workers can
	// reconstruct their code. Nodes, SlotsPerNode and the cost model
	// still describe the modelled cluster for SimTime purposes; FS
	// remains the job input/output store, served to workers by the
	// backend.
	Distributed Backend
}

// NewCluster creates a cluster with sensible defaults applied.
func NewCluster(nodes, slotsPerNode int, fs *dfs.FS) *Cluster {
	if nodes <= 0 {
		nodes = 1
	}
	if slotsPerNode <= 0 {
		slotsPerNode = 1
	}
	return &Cluster{Nodes: nodes, SlotsPerNode: slotsPerNode, FS: fs, Cost: DefaultCostModel()}
}

// slots returns the cluster-wide worker slot count.
func (c *Cluster) slots() int { return c.Nodes * c.SlotsPerNode }

// kvRec is one intermediate record retained between the map and reduce
// phases, with enough metadata for shuffle accounting.
type kvRec struct {
	key, value []byte
	node       int // node of the producing map task
}

// framedSize is the on-the-wire size of a record using SequenceFile
// framing, which is what the shuffle would move. It delegates to the
// canonical codec in the spill package so shuffle accounting, spill
// files and DFS SequenceFiles agree byte-for-byte.
func framedSize(key, value []byte) int64 {
	return spill.FramedSize(key, value)
}

// shuffleData carries the map phase's output to the reduce phase in one
// of two forms: materialized per-partition record lists (the classic
// in-memory path) or per-task spill outputs in a run store (the
// out-of-core path, MemoryBudget > 0).
type shuffleData struct {
	mem   [][]kvRec       // partition -> records (in-memory path)
	outs  []*spill.Output // per map task (spill path)
	store spill.RunStore  // backing store for outs
}

// spilled reports whether the out-of-core path is in use.
func (sh *shuffleData) spilled() bool { return sh.store != nil }

// partSegments gathers every map task's segments for one partition.
func (sh *shuffleData) partSegments(p int) []spill.Segment {
	var segs []spill.Segment
	for _, out := range sh.outs {
		if out != nil {
			segs = append(segs, out.Parts[p]...)
		}
	}
	return segs
}

// Split is one map task's input: a record-aligned byte range of a file
// plus its preferred (data-local) node. Exported so distributed backends
// plan identical task inputs.
type Split struct {
	Data []byte // record-aligned slice of the file contents
	Node int    // preferred (data-local) node
}

// PlanSplits cuts an input file into record-aligned splits of roughly one
// DFS block each, the way Hadoop derives one map task per block.
func (c *Cluster) PlanSplits(name string) ([]Split, int64, error) {
	data, err := c.FS.ReadFile(name)
	if err != nil {
		return nil, 0, err
	}
	blocks, err := c.FS.Blocks(name)
	if err != nil {
		return nil, 0, err
	}
	blockSize := c.FS.Config().BlockSize
	nodeOf := func(off int) int {
		bi := off / blockSize
		if bi >= len(blocks) {
			bi = len(blocks) - 1
		}
		if bi < 0 || len(blocks[bi].Nodes) == 0 {
			return 0
		}
		return blocks[bi].Nodes[0]
	}

	var splits []Split
	r := dfs.NewRecordReader(data)
	start, off := 0, 0
	for {
		key, value, ok, err := r.Next()
		if err != nil {
			return nil, 0, fmt.Errorf("mapreduce: input %q: %w", name, err)
		}
		if !ok {
			break
		}
		off += int(framedSize(key, value))
		if off-start >= blockSize {
			splits = append(splits, Split{Data: data[start:off], Node: nodeOf(start)})
			start = off
		}
	}
	if off > start {
		splits = append(splits, Split{Data: data[start:off], Node: nodeOf(start)})
	}
	return splits, int64(len(data)), nil
}

// Run executes one MapReduce job to completion and returns its result,
// corresponding to job.waitForCompletion() in Fig. 2 of the paper.
func (c *Cluster) Run(job *Job) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if c.FS == nil {
		return nil, fmt.Errorf("mapreduce: cluster has no file system")
	}
	if c.Distributed != nil {
		return c.Distributed.RunJob(c, job)
	}
	start := time.Now()
	jobSpan := c.Tracer.Start(trace.CatJob, job.Name, job.Parent)
	defer jobSpan.End()
	log := obsv.Or(c.Log).With("job", job.Name, "round", job.Round)
	log.Debug("job start", "inputs", len(job.Inputs))

	side, err := c.loadSideFiles(job)
	if err != nil {
		return nil, err
	}

	var splits []Split
	res := &Result{}
	for _, in := range job.Inputs {
		ss, sz, err := c.PlanSplits(in)
		if err != nil {
			return nil, err
		}
		splits = append(splits, ss...)
		res.InputBytes += sz
	}
	if len(splits) == 0 {
		// A valid but empty input still runs zero map tasks and produces
		// empty output partitions so downstream rounds can proceed.
		splits = nil
	}

	counters := NewCounters()
	res.MapTasks = len(splits)

	// The out-of-core shuffle only applies to jobs with a reduce phase:
	// map-only jobs have no shuffle to spill.
	var store spill.RunStore
	if c.MemoryBudget > 0 && job.NewReducer != nil {
		ds, err := spill.NewDiskRunStore(c.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
		}
		store = ds
		defer store.Close()
	}

	mapSpan := c.Tracer.Start(trace.CatPhase, "map", jobSpan)
	mapOut, mapDur, err := c.runMapPhase(job, splits, side, counters, res, mapSpan, store)
	mapSpan.SetInt("tasks", int64(len(splits)))
	mapSpan.SetInt("records_out", res.MapOutputRecords)
	mapSpan.SetInt("bytes_out", res.MapOutputBytes)
	mapSpan.End()
	if err != nil {
		return nil, err
	}

	c.FS.DeletePrefix(job.OutputPrefix)

	reduceSpan := c.Tracer.Start(trace.CatPhase, "reduce", jobSpan)
	var reduceDur []time.Duration
	var reduceFetch []int64
	if job.NewReducer == nil {
		reduceDur, reduceFetch, err = c.writeMapOnlyOutput(job, mapOut, res)
	} else {
		reduceDur, reduceFetch, err = c.runReducePhase(job, mapOut, side, counters, res, reduceSpan)
	}
	reduceSpan.SetInt("tasks", int64(res.ReduceTasks))
	reduceSpan.SetInt(trace.AttrShuffleBytes, res.ShuffleBytes)
	reduceSpan.SetInt(trace.AttrOutputBytes, res.OutputBytes)
	reduceSpan.End()
	if err != nil {
		return nil, err
	}

	if mapOut.spilled() {
		c.publishSpillMetrics(res, jobSpan)
	}

	res.Counters = counters.Snapshot()
	res.WallTime = time.Since(start)
	res.SimTime = c.ModelSimTime(job, res, splits, mapDur, reduceDur, reduceFetch)
	jobSpan.SetInt("map_tasks", int64(res.MapTasks))
	jobSpan.SetInt("reduce_tasks", int64(res.ReduceTasks))
	jobSpan.SetInt(trace.AttrMapOutRecords, res.MapOutputRecords)
	jobSpan.SetInt(trace.AttrShuffleBytes, res.ShuffleBytes)
	jobSpan.SetInt(trace.AttrOutputBytes, res.OutputBytes)
	jobSpan.SetInt("task_failures", counters.Get("task failures"))
	jobSpan.SetInt(trace.AttrSimTimeUS, res.SimTime.Microseconds())
	log.Info("job done",
		"map_tasks", res.MapTasks, "reduce_tasks", res.ReduceTasks,
		"shuffle_bytes", res.ShuffleBytes, "output_bytes", res.OutputBytes,
		"task_failures", counters.Get("task failures"),
		"wall", res.WallTime, "sim", res.SimTime)
	return res, nil
}

// publishSpillMetrics annotates the job span and the tracer's registry
// with the out-of-core shuffle statistics, so exported traces show the
// spill activity alongside the Table I counters.
func (c *Cluster) publishSpillMetrics(res *Result, jobSpan *trace.Span) {
	jobSpan.SetInt(trace.AttrSpills, res.Spills)
	jobSpan.SetInt(trace.AttrSpilledBytes, res.SpilledBytes)
	jobSpan.SetInt(trace.AttrMergePasses, res.MergePasses)
	reg := c.Tracer.Registry()
	reg.Counter(trace.CounterSpills).Add(res.Spills)
	reg.Counter(trace.CounterSpilledBytes).Add(res.SpilledBytes)
	reg.Counter(trace.CounterMergePasses).Add(res.MergePasses)
	reg.Gauge(trace.GaugeMergeFanIn).Set(res.MaxMergeFanIn)
}

func (c *Cluster) loadSideFiles(job *Job) (map[string][]byte, error) {
	if len(job.SideFiles) == 0 {
		return nil, nil
	}
	side := make(map[string][]byte, len(job.SideFiles))
	for _, name := range job.SideFiles {
		data, err := c.FS.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: side file: %w", err)
		}
		side[name] = data
	}
	return side, nil
}

// mapTaskStats aggregates one map task's record counters.
type mapTaskStats struct {
	inRecs, outRecs, outBytes, maxRec int64
}

// runMapPhase executes all map tasks on the worker pool and returns the
// intermediate shuffle data plus per-task measured durations. With a
// run store (MemoryBudget > 0) each task spills sorted runs to the
// store under its budget; otherwise partitions are materialized in
// memory.
func (c *Cluster) runMapPhase(job *Job, splits []Split, side map[string][]byte,
	counters *Counters, res *Result, phase *trace.Span, store spill.RunStore) (*shuffleData, []time.Duration, error) {

	numParts := job.NumReducers
	if job.NewReducer == nil {
		numParts = len(splits)
	}
	sh := &shuffleData{store: store}
	taskParts := make([][][]kvRec, len(splits)) // task -> partition -> records
	taskOuts := make([]*spill.Output, len(splits))
	taskDur := make([]time.Duration, len(splits))
	taskStats := make([]mapTaskStats, len(splits))

	var wg sync.WaitGroup
	sem := make(chan struct{}, c.slots())
	errs := make(chan error, len(splits))

	for ti := range splits {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			t0 := time.Now()
			node := splits[ti].Node
			err := c.runAttempts(job, "map", ti, node, counters, phase, func(att *trace.Span, attempt int) error {
				// Per-attempt state: a failed attempt's partial output is
				// discarded, as Hadoop discards a failed task attempt's
				// spill files.
				var st mapTaskStats
				var parts [][]kvRec
				var w *spill.Writer
				var emitErr error
				emit := func(key, value []byte) {
					k := append([]byte(nil), key...)
					v := append([]byte(nil), value...)
					var p int
					if job.NewReducer == nil {
						p = ti
					} else {
						p = partition(k, job.NumReducers)
					}
					parts[p] = append(parts[p], kvRec{key: k, value: v, node: node})
					st.outRecs++
					sz := framedSize(k, v)
					st.outBytes += sz
					if sz > st.maxRec {
						st.maxRec = sz
					}
				}
				if sh.spilled() {
					cfg := spill.Config{
						Partitions:   numParts,
						MemoryBudget: c.MemoryBudget,
						Store:        store,
						NamePrefix:   fmt.Sprintf("map-%05d/a%d/", ti, attempt),
						Node:         node,
						Compress:     c.SpillCompress,
						Tracer:       c.Tracer,
						Parent:       att,
					}
					if job.NewCombiner != nil {
						combiner := job.NewCombiner()
						cfg.Combine = combiner.Combine
						cfg.OnCombine = func(in, out int64) {
							counters.Add("combine input records", in)
							counters.Add("combine output records", out)
						}
					}
					if c.Fault.DiskFailureRate > 0 {
						cfg.FailSpill = func(idx int) error {
							// Hash on a per-(attempt, spill) coordinate so a
							// retry re-draws every spill independently.
							if injectHash(c.Fault.Seed, job.Name, "spill", ti, attempt<<16|idx) < c.Fault.DiskFailureRate {
								return fmt.Errorf("injected disk write failure")
							}
							return nil
						}
					}
					sw, err := spill.NewWriter(cfg)
					if err != nil {
						return fmt.Errorf("mapreduce: %s map task %d: %w", job.Name, ti, err)
					}
					w = sw
					// The TaskContext emit API has no error return, so spill
					// errors latch into emitErr and surface after the map loop.
					emit = func(key, value []byte) {
						if emitErr != nil {
							return
						}
						p := partition(key, job.NumReducers)
						if err := w.Add(p, key, value); err != nil {
							emitErr = err
							return
						}
						st.outRecs++
					}
				} else {
					parts = make([][]kvRec, numParts)
				}
				ctx := &TaskContext{
					round:    job.Round,
					task:     ti,
					exec:     attempt,
					node:     node,
					counters: counters,
					side:     side,
					service:  job.Service,
					emit:     emit,
				}

				// fail discards the attempt's partial spill state (as Hadoop
				// deletes a failed attempt's spill files) before reporting.
				fail := func(err error) error {
					if w != nil {
						w.Abort()
					}
					return fmt.Errorf("mapreduce: %s map task %d: %w", job.Name, ti, err)
				}

				mapper := job.NewMapper()
				r := dfs.NewRecordReader(splits[ti].Data)
				st.inRecs = 0
				for {
					key, value, ok, err := r.Next()
					if err != nil {
						return fail(err)
					}
					if !ok {
						break
					}
					st.inRecs++
					if err := mapper.Map(ctx, key, value); err != nil {
						return fail(err)
					}
				}
				if sh.spilled() {
					if emitErr == nil {
						out, err := w.Close()
						if err == nil {
							st.outBytes = out.RawBytes
							st.maxRec = out.MaxFrame
							att.SetInt("spills", out.Spills)
							att.SetInt("records_out", st.outRecs)
							att.SetInt("raw_bytes", out.RawBytes)
							taskOuts[ti] = out
							taskStats[ti] = st
							return nil
						}
						emitErr = err
					}
					return fail(emitErr)
				}
				if job.NewCombiner != nil && job.NewReducer != nil {
					if err := combineParts(job, parts, &st, counters, node); err != nil {
						return fmt.Errorf("mapreduce: %s map task %d: %w", job.Name, ti, err)
					}
				}
				taskParts[ti] = parts
				taskStats[ti] = st
				return nil
			})
			if err != nil {
				errs <- err
				return
			}
			taskDur[ti] = time.Since(t0)
		}(ti)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, nil, err
	}

	for ti := range taskStats {
		res.MapInputRecords += taskStats[ti].inRecs
		res.MapOutputRecords += taskStats[ti].outRecs
		res.MapOutputBytes += taskStats[ti].outBytes
		if taskStats[ti].maxRec > res.MaxRecordBytes {
			res.MaxRecordBytes = taskStats[ti].maxRec
		}
	}

	if sh.spilled() {
		sh.outs = taskOuts
		for _, out := range taskOuts {
			if out != nil {
				res.Spills += out.Spills
				res.SpilledBytes += out.RawBytes
			}
		}
		return sh, taskDur, nil
	}

	// Collect per-partition record lists across tasks.
	out := make([][]kvRec, numParts)
	for p := 0; p < numParts; p++ {
		var n int
		for ti := range taskParts {
			if taskParts[ti] != nil {
				n += len(taskParts[ti][p])
			}
		}
		recs := make([]kvRec, 0, n)
		for ti := range taskParts {
			if taskParts[ti] != nil {
				recs = append(recs, taskParts[ti][p]...)
			}
		}
		out[p] = recs
	}
	sh.mem = out
	return sh, taskDur, nil
}

// injectHash returns a deterministic pseudo-random value in [0,1) for a
// task attempt, used for failure injection and the straggler model.
func injectHash(seed int64, job, phase string, task, attempt int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h ^= uint64(b); h *= prime64 }
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(job); i++ {
		mix(job[i])
	}
	for i := 0; i < len(phase); i++ {
		mix(phase[i])
	}
	for i := 0; i < 4; i++ {
		mix(byte(task >> (8 * i)))
		mix(byte(attempt >> (8 * i)))
	}
	return float64(h>>11) / float64(1<<53)
}

// runAttempts executes a task body with Hadoop-style attempt semantics:
// on an injected worker failure or a body error, the attempt's partial
// output is discarded and the task is retried, up to Fault.MaxAttempts
// times. The "task failures" counter records discarded attempts. Each
// attempt is recorded as its own task span (lane = simulated node), so
// retries are visible in the exported trace.
func (c *Cluster) runAttempts(job *Job, phase string, task, node int, counters *Counters,
	parent *trace.Span, body func(att *trace.Span, attempt int) error) error {

	maxAttempts := c.Fault.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sp := c.Tracer.Start(trace.CatTask, fmt.Sprintf("%s-%05d", phase, task), parent)
		sp.SetInt("task", int64(task))
		sp.SetInt("attempt", int64(attempt))
		sp.SetInt("node", int64(node))
		sp.SetTID(int64(node) + 2)
		if c.Fault.FailureRate > 0 &&
			injectHash(c.Fault.Seed, job.Name, phase, task, attempt) < c.Fault.FailureRate {
			counters.Add("task failures", 1)
			lastErr = fmt.Errorf("mapreduce: %s %s task %d attempt %d: injected worker failure",
				job.Name, phase, task, attempt)
			sp.SetStr("error", "injected worker failure")
			sp.End()
			obsv.Or(c.Log).Warn("task attempt failed",
				"job", job.Name, "phase", phase, "task", task, "exec", attempt,
				"err", "injected worker failure")
			continue
		}
		if err := body(sp, attempt); err != nil {
			counters.Add("task failures", 1)
			lastErr = err
			sp.SetStr("error", err.Error())
			sp.End()
			obsv.Or(c.Log).Warn("task attempt failed",
				"job", job.Name, "phase", phase, "task", task, "exec", attempt, "err", err)
			continue
		}
		sp.End()
		return nil
	}
	return fmt.Errorf("mapreduce: %s %s task %d failed after %d attempts: %w",
		job.Name, phase, task, maxAttempts, lastErr)
}

// partition hashes a key to a reduce partition (Hadoop's default
// HashPartitioner behaviour, with FNV-1a instead of Java hashCode).
func partition(key []byte, numReducers int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % uint32(numReducers))
}

// combineParts runs the job's combiner over one map task's output,
// replacing each partition's records with the per-key combined values.
// Hadoop counts pre-combine records as "map output records"; the
// combine counters record the aggregation ratio.
func combineParts(job *Job, parts [][]kvRec, st *mapTaskStats, counters *Counters, node int) error {
	combiner := job.NewCombiner()
	st.outBytes = 0
	st.maxRec = 0
	var inRecs, outRecs int64
	for p := range parts {
		recs := parts[p]
		if len(recs) == 0 {
			continue
		}
		sortRecs(recs)
		// A fresh slice: the combiner may emit more records than it
		// consumed, so in-place compaction could overwrite unread input.
		combined := make([]kvRec, 0, len(recs))
		for i := 0; i < len(recs); {
			j := i
			for j < len(recs) && bytes.Equal(recs[j].key, recs[i].key) {
				j++
			}
			group := make([][]byte, 0, j-i)
			for k := i; k < j; k++ {
				group = append(group, recs[k].value)
			}
			inRecs += int64(len(group))
			out, err := combiner.Combine(recs[i].key, group)
			if err != nil {
				return err
			}
			outRecs += int64(len(out))
			for _, v := range out {
				combined = append(combined, kvRec{key: recs[i].key, value: v, node: node})
				sz := framedSize(recs[i].key, v)
				st.outBytes += sz
				if sz > st.maxRec {
					st.maxRec = sz
				}
			}
			i = j
		}
		parts[p] = combined
	}
	counters.Add("combine input records", inRecs)
	counters.Add("combine output records", outRecs)
	return nil
}

func partName(prefix string, p int) string { return fmt.Sprintf("%spart-%05d", prefix, p) }

// PartName returns the DFS name of output partition p under prefix,
// matching Hadoop's part-NNNNN naming.
func PartName(prefix string, p int) string { return partName(prefix, p) }

// writeMapOnlyOutput persists each map task's emissions directly, one
// partition per task, for jobs with no reduce phase. The measured write
// durations feed simTime so map-only jobs model real per-task output
// cost rather than a free reduce phase; fetch is all zeros (nothing is
// shuffled).
func (c *Cluster) writeMapOnlyOutput(job *Job, mapOut *shuffleData, res *Result) ([]time.Duration, []int64, error) {
	durs := make([]time.Duration, len(mapOut.mem))
	for p, recs := range mapOut.mem {
		t0 := time.Now()
		sortRecs(recs)
		var w dfs.RecordWriter
		for _, r := range recs {
			w.Append(r.key, r.value)
		}
		if err := c.FS.WriteFile(partName(job.OutputPrefix, p), w.Bytes()); err != nil {
			return nil, nil, err
		}
		res.ReduceOutputRecords += int64(w.Records())
		res.OutputBytes += int64(w.Len())
		durs[p] = time.Since(t0)
	}
	return durs, make([]int64, len(mapOut.mem)), nil
}

func sortRecs(recs []kvRec) {
	sort.Slice(recs, func(i, j int) bool {
		if cmp := bytes.Compare(recs[i].key, recs[j].key); cmp != 0 {
			return cmp < 0
		}
		return bytes.Compare(recs[i].value, recs[j].value) < 0
	})
}

// runReducePhase shuffles, sorts, groups and reduces each partition,
// writing one output file per reduce task. On the in-memory path the
// partition is sorted in place; on the spill path the reducer streams
// through a k-way merge over the map tasks' spill segments (with
// intermediate merge passes when the segment count exceeds MergeFanIn).
func (c *Cluster) runReducePhase(job *Job, mapOut *shuffleData, side map[string][]byte,
	counters *Counters, res *Result, phase *trace.Span) ([]time.Duration, []int64, error) {

	res.ReduceTasks = job.NumReducers
	taskDur := make([]time.Duration, job.NumReducers)
	fetch := make([]int64, job.NumReducers)
	outRecs := make([]int64, job.NumReducers)
	outBytes := make([]int64, job.NumReducers)
	var shuffleBytes, interNode int64
	var statMu sync.Mutex

	var wg sync.WaitGroup
	sem := make(chan struct{}, c.slots())
	errs := make(chan error, job.NumReducers)

	for p := 0; p < job.NumReducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			t0 := time.Now()
			node := p % c.Nodes

			// Fetch accounting. Every segment of a map task lives on that
			// task's node, so summing per segment on the spill path equals
			// the in-memory per-record sum exactly.
			var recs []kvRec
			var segs []spill.Segment
			var myFetch, myInter int64
			if mapOut.spilled() {
				segs = mapOut.partSegments(p)
				for _, seg := range segs {
					myFetch += seg.RawBytes
					if seg.Node != node {
						myInter += seg.RawBytes
					}
				}
			} else {
				recs = mapOut.mem[p]
				for i := range recs {
					sz := framedSize(recs[i].key, recs[i].value)
					myFetch += sz
					if recs[i].node != node {
						myInter += sz
					}
				}
				sortRecs(recs)
			}

			err := c.runAttempts(job, "reduce", p, node, counters, phase, func(att *trace.Span, attempt int) error {
				var base []kvRec
				if job.Schimmy {
					b, err := c.readBasePartition(partName(job.SchimmyBase, p))
					if err != nil {
						return fmt.Errorf("mapreduce: %s reduce task %d: %w", job.Name, p, err)
					}
					base = b
				}

				// Each attempt gets a fresh record stream: a slice cursor in
				// memory, or a fresh merge over the spill segments.
				var stream recIter
				if mapOut.spilled() {
					it, mstats, err := spill.Merge(mapOut.store, segs, spill.MergeOptions{
						FanIn:     c.MergeFanIn,
						Compress:  c.SpillCompress,
						TmpPrefix: fmt.Sprintf("reduce-%05d/a%d/", p, attempt),
						Tracer:    c.Tracer,
						Parent:    att,
					})
					if err != nil {
						return fmt.Errorf("mapreduce: %s reduce task %d: %w", job.Name, p, err)
					}
					defer it.Close()
					att.SetInt("merge_passes", mstats.Passes)
					att.SetInt("merge_segments", mstats.Segments)
					statMu.Lock()
					res.MergePasses += mstats.Passes
					if mstats.MaxFanIn > res.MaxMergeFanIn {
						res.MaxMergeFanIn = mstats.MaxFanIn
					}
					statMu.Unlock()
					stream = it.Next
				} else {
					stream = sliceIter(recs)
				}

				var w dfs.RecordWriter
				ctx := &TaskContext{
					round:    job.Round,
					task:     p,
					exec:     attempt,
					node:     node,
					counters: counters,
					side:     side,
					service:  job.Service,
					emit:     func(key, value []byte) { w.Append(key, value) },
				}
				reducer := job.NewReducer()

				maxGroup, err := reduceGroups(ctx, reducer, base, stream)
				if err != nil {
					return fmt.Errorf("mapreduce: %s reduce task %d: %w", job.Name, p, err)
				}
				statMu.Lock()
				if maxGroup > res.MaxGroupBytes {
					res.MaxGroupBytes = maxGroup
				}
				statMu.Unlock()

				if err := c.FS.WriteFile(partName(job.OutputPrefix, p), w.Bytes()); err != nil {
					return err
				}
				statMu.Lock()
				outRecs[p] = int64(w.Records())
				outBytes[p] = int64(w.Len())
				statMu.Unlock()
				return nil
			})
			if err != nil {
				errs <- err
				return
			}
			statMu.Lock()
			shuffleBytes += myFetch
			interNode += myInter
			fetch[p] = myFetch
			statMu.Unlock()
			taskDur[p] = time.Since(t0)
		}(p)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, nil, err
	}

	res.ShuffleBytes = shuffleBytes
	res.InterNodeShuffleBytes = interNode
	for p := range outRecs {
		res.ReduceOutputRecords += outRecs[p]
		res.OutputBytes += outBytes[p]
	}
	return taskDur, fetch, nil
}

// readBasePartition loads a schimmy base partition and returns its
// records sorted by key for the merge-join.
func (c *Cluster) readBasePartition(name string) ([]kvRec, error) {
	if !c.FS.Exists(name) {
		return nil, fmt.Errorf("schimmy base %q does not exist", name)
	}
	data, err := c.FS.ReadFile(name)
	if err != nil {
		return nil, err
	}
	var recs []kvRec
	r := dfs.NewRecordReader(data)
	for {
		key, value, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, kvRec{key: key, value: value})
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })
	return recs, nil
}

// recIter streams sorted shuffle records to a reduce task: a cursor
// over an in-memory slice, or a spill.Iterator's Next method on the
// out-of-core path. Returned slices must stay valid across calls.
type recIter func() (key, value []byte, ok bool, err error)

// sliceIter adapts a sorted record slice to recIter.
func sliceIter(recs []kvRec) recIter {
	i := 0
	return func() ([]byte, []byte, bool, error) {
		if i >= len(recs) {
			return nil, nil, false, nil
		}
		r := recs[i]
		i++
		return r.key, r.value, true, nil
	}
}

// reduceGroups walks the sorted shuffle stream and (for schimmy jobs) the
// sorted base partition in a merge-join, invoking the reducer once per
// key in the union. Keys present only in the base still reach the
// reducer so master records survive rounds in which they receive no
// fragments. It returns the byte size of the largest group processed.
func reduceGroups(ctx *TaskContext, reducer Reducer, base []kvRec, next recIter) (int64, error) {
	var maxGroup int64
	bi := 0
	rkey, rval, rok, err := next()
	if err != nil {
		return 0, err
	}
	for bi < len(base) || rok {
		var key []byte
		switch {
		case bi >= len(base):
			key = rkey
		case !rok:
			key = base[bi].key
		default:
			if bytes.Compare(base[bi].key, rkey) <= 0 {
				key = base[bi].key
			} else {
				key = rkey
			}
		}

		var master []byte
		if bi < len(base) && bytes.Equal(base[bi].key, key) {
			master = base[bi].value
			bi++
			// Duplicate keys in a base partition would indicate a broken
			// previous round; consume defensively.
			for bi < len(base) && bytes.Equal(base[bi].key, key) {
				bi++
			}
		}

		var vals [][]byte
		groupBytes := int64(len(master))
		for rok && bytes.Equal(rkey, key) {
			vals = append(vals, rval)
			groupBytes += framedSize(rkey, rval)
			rkey, rval, rok, err = next()
			if err != nil {
				return 0, err
			}
		}
		if groupBytes > maxGroup {
			maxGroup = groupBytes
		}
		if err := reducer.Reduce(ctx, key, master, &Values{vals: vals}); err != nil {
			return 0, err
		}
	}
	return maxGroup, nil
}

// ModelSimTime applies the cost model: map and reduce task costs are packed
// onto the cluster's worker slots (greedy longest-queue-avoidance, which
// is how Hadoop's scheduler behaves with uniform tasks), and phase
// makespans plus fixed overhead give the simulated round time. The
// straggler model multiplies each task's cost by a deterministic draw;
// speculative execution charges the better of two attempts' draws, which
// is exactly the mechanism by which Hadoop's backup tasks shorten the
// tail of a phase.
func (c *Cluster) ModelSimTime(job *Job, res *Result, splits []Split, mapDur, reduceDur []time.Duration, reduceFetch []int64) time.Duration {
	cm := c.Cost
	xfer := func(bytes int64, bytesPerSec float64) time.Duration {
		if bytesPerSec <= 0 || bytes <= 0 {
			return 0
		}
		return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
	}
	straggle := func(phase string, task int) float64 {
		if cm.StragglerProb <= 0 || cm.StragglerFactor <= 1 {
			return 1
		}
		factor := func(attempt int) float64 {
			if injectHash(c.Fault.Seed+1, job.Name, phase, task, attempt) < cm.StragglerProb {
				return cm.StragglerFactor
			}
			return 1
		}
		f := factor(0)
		if job.Speculative && f > 1 {
			if f2 := factor(1); f2 < f {
				f = f2
			}
		}
		return f
	}

	var mapCosts []time.Duration
	for i := range splits {
		cost := cm.TaskOverhead +
			xfer(int64(len(splits[i].Data)), cm.DiskBytesPerSec) +
			time.Duration(float64(mapDur[i])*cm.CPUFactor)
		mapCosts = append(mapCosts, time.Duration(float64(cost)*straggle("map", i)))
	}
	// Map output spill is charged once against aggregate disk bandwidth.
	// On the out-of-core path the spilled bytes (which include re-written
	// combiner output) are what actually hit disk.
	spillBytes := res.MapOutputBytes
	if res.SpilledBytes > 0 {
		spillBytes = res.SpilledBytes
	}
	spillCost := xfer(spillBytes/int64(c.Nodes), cm.DiskBytesPerSec)

	// A map-only job has no reduce tasks to launch: its "reduce" costs are
	// the map tasks' own output writes, so no per-task overhead applies.
	reduceOverhead := cm.TaskOverhead
	if job.NewReducer == nil {
		reduceOverhead = 0
	}
	var reduceCosts []time.Duration
	for i := range reduceDur {
		var f int64
		if i < len(reduceFetch) {
			f = reduceFetch[i]
		}
		cost := reduceOverhead +
			xfer(f, cm.NetBytesPerSec) +
			time.Duration(float64(reduceDur[i])*cm.CPUFactor)
		reduceCosts = append(reduceCosts, time.Duration(float64(cost)*straggle("reduce", i)))
	}
	outWrite := xfer(res.OutputBytes/int64(c.Nodes), cm.DiskBytesPerSec)

	return cm.RoundOverhead + makespan(mapCosts, c.slots()) + spillCost +
		makespan(reduceCosts, c.slots()) + outWrite
}

// makespan packs task costs onto n slots greedily (each task goes to the
// least-loaded slot) and returns the maximum slot load.
func makespan(costs []time.Duration, n int) time.Duration {
	if len(costs) == 0 || n <= 0 {
		return 0
	}
	loads := make([]time.Duration, n)
	for _, c := range costs {
		mi := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += c
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// EncodeCounterFile serializes a counter snapshot for persistence in the
// DFS (used by the driver to checkpoint per-round statistics).
func EncodeCounterFile(counters map[string]int64) []byte {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendVarint(buf, counters[name])
	}
	return buf
}

// DecodeCounterFile parses a file produced by EncodeCounterFile.
func DecodeCounterFile(data []byte) (map[string]int64, error) {
	out := make(map[string]int64)
	off := 0
	for off < len(data) {
		n, sz := binary.Uvarint(data[off:])
		if sz <= 0 || uint64(len(data)-off-sz) < n {
			return nil, fmt.Errorf("mapreduce: corrupt counter file at offset %d", off)
		}
		off += sz
		name := string(data[off : off+int(n)])
		off += int(n)
		v, sz := binary.Varint(data[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("mapreduce: corrupt counter value at offset %d", off)
		}
		off += sz
		out[name] = v
	}
	return out, nil
}
