package mapreduce

import (
	"fmt"
	"strconv"
	"testing"

	"ffmr/internal/dfs"
)

// BenchmarkShuffle compares the in-memory shuffle against the
// out-of-core spill/merge path at several memory budgets, on a
// shuffle-heavy identity-count job. Baseline numbers live in
// BENCH_shuffle.json at the repo root.
func BenchmarkShuffle(b *testing.B) {
	const inputRecords = 4000
	build := func() ([][2]string, int64) {
		var kvs [][2]string
		var bytes int64
		for i := 0; i < inputRecords; i++ {
			k := fmt.Sprintf("key-%05d", i%257)
			v := fmt.Sprintf("payload-%d-abcdefghijklmnopqrstuvwxyz", i)
			kvs = append(kvs, [2]string{k, v})
			bytes += int64(len(k) + len(v))
		}
		return kvs, bytes
	}
	kvs, inBytes := build()

	job := func() *Job {
		return &Job{
			Name:         "bench",
			Inputs:       []string{"in/0"},
			OutputPrefix: "out/",
			NumReducers:  4,
			NewMapper: func() Mapper {
				return MapperFunc(func(ctx *TaskContext, key, value []byte) error {
					ctx.Emit(key, value)
					return nil
				})
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(ctx *TaskContext, key, master []byte, values *Values) error {
					ctx.Emit(key, []byte(strconv.Itoa(values.Len())))
					return nil
				})
			},
		}
	}

	cases := []struct {
		name     string
		budget   int64
		compress bool
	}{
		{"mem-unbounded", 0, false},
		{"budget-16KiB", 16 << 10, false},
		{"budget-64KiB", 64 << 10, false},
		{"budget-256KiB", 256 << 10, false},
		{"budget-64KiB-compress", 64 << 10, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fs := dfs.New(dfs.Config{Nodes: 4, BlockSize: 32 << 10, Replication: 2})
			c := NewCluster(4, 4, fs)
			c.Cost = ZeroCostModel()
			c.MemoryBudget = tc.budget
			c.SpillDir = b.TempDir()
			c.SpillCompress = tc.compress
			var w dfs.RecordWriter
			for _, kv := range kvs {
				w.Append([]byte(kv[0]), []byte(kv[1]))
			}
			if err := fs.WriteFile("in/0", w.Bytes()); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(inBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Run(job())
				if err != nil {
					b.Fatal(err)
				}
				if tc.budget > 0 && res.Spills == 0 {
					b.Fatal("budgeted run produced no spills")
				}
			}
		})
	}
}
