package mapreduce

import (
	"bytes"
	"sort"

	"ffmr/internal/dfs"
	"ffmr/internal/trace"
)

// This file is the exported surface a distributed backend (internal/distmr)
// needs to execute tasks worker-side with byte parity against the
// simulated engine: the same partitioner, the same failure-injection
// hash, the same reduce-side group walk, and the same schimmy base
// handling. Everything here delegates to the engine's internals so the
// two code paths cannot drift.

// Partition hashes a key to a reduce partition, exactly as the simulated
// engine's shuffle does (FNV-1a HashPartitioner).
func Partition(key []byte, numReducers int) int {
	return partition(key, numReducers)
}

// InjectHash returns the deterministic pseudo-random draw in [0,1) used
// for failure injection, keyed by (seed, job, phase, task, attempt).
// Distributed workers use it to draw WorkerCrashRate decisions from the
// same sequence regardless of which worker holds the lease.
func InjectHash(seed int64, job, phase string, task, attempt int) float64 {
	return injectHash(seed, job, phase, task, attempt)
}

// NewTaskContext builds the context handed to Mapper/Reducer code on a
// distributed worker. The simulated engine builds the identical struct
// internally. exec is the execution id exposed as TaskContext.Exec —
// a distributed backend passes its assignment number.
func NewTaskContext(round, task, exec, node int, counters *Counters, side map[string][]byte,
	service any, emit func(key, value []byte)) *TaskContext {
	return &TaskContext{
		round:    round,
		task:     task,
		exec:     exec,
		node:     node,
		counters: counters,
		side:     side,
		service:  service,
		emit:     emit,
	}
}

// PublishSpillMetrics annotates a job span and the cluster tracer's
// registry with a job's out-of-core shuffle statistics, exactly as the
// simulated engine does for its budgeted runs. A distributed backend
// calls it for jobs run under a memory budget so `spills`/`merge passes`
// registry counters agree across backends.
func (c *Cluster) PublishSpillMetrics(res *Result, jobSpan *trace.Span) {
	c.publishSpillMetrics(res, jobSpan)
}

// Rec is one key/value record, the exported shape of the engine's
// internal shuffle record.
type Rec struct {
	Key, Value []byte
}

// RecIter streams sorted records to ReduceGroups: spill.Iterator.Next on
// the merged shuffle, or an in-memory cursor. Returned slices must stay
// valid across calls.
type RecIter = recIter

// ReduceGroups walks the sorted shuffle stream and (for schimmy jobs)
// the sorted base records in a merge-join, invoking the reducer once per
// key in the union, and returns the byte size of the largest group —
// identical semantics to the simulated engine's reduce loop.
func ReduceGroups(ctx *TaskContext, reducer Reducer, base []Rec, next RecIter) (int64, error) {
	var kbase []kvRec
	if len(base) > 0 {
		kbase = make([]kvRec, len(base))
		for i, r := range base {
			kbase[i] = kvRec{key: r.Key, value: r.Value}
		}
	}
	return reduceGroups(ctx, reducer, kbase, next)
}

// ReadBaseRecords parses a schimmy base partition's raw bytes and
// returns its records sorted by key for the merge-join, matching the
// simulated engine's base handling.
func ReadBaseRecords(data []byte) ([]Rec, error) {
	var recs []Rec
	r := dfs.NewRecordReader(data)
	for {
		key, value, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, Rec{Key: key, Value: value})
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].Key, recs[j].Key) < 0 })
	return recs, nil
}
