package mapreduce

import (
	"fmt"
	"testing"

	"ffmr/internal/leakcheck"
	"ffmr/internal/trace"
)

// TestNoGoroutineLeakWithInjectedFailures verifies the worker pool winds
// down completely after a job whose tasks fail and retry — the failure
// path must not strand attempt goroutines.
func TestNoGoroutineLeakWithInjectedFailures(t *testing.T) {
	defer leakcheck.Check(t)()
	c := newTestCluster(3, 2, 32)
	c.Tracer = trace.New()
	c.Fault = Faults{MaxAttempts: 10, FailureRate: 0.4, Seed: 5}
	var kvs [][2]string
	for i := 0; i < 60; i++ {
		kvs = append(kvs, [2]string{fmt.Sprintf("k%02d", i), "v"})
	}
	writeRecords(t, c, "in/0", kvs)
	res, err := c.Run(identityJob([]string{"in/0"}, "out/"))
	if err != nil {
		t.Fatalf("job with retries failed: %v", err)
	}
	if res.Counter("task failures") == 0 {
		t.Error("no failures injected at 40% rate")
	}
}

// TestNoGoroutineLeakAfterFailedJob covers the abort path: a job that
// exhausts its attempts must also leave no stray goroutines behind.
func TestNoGoroutineLeakAfterFailedJob(t *testing.T) {
	defer leakcheck.Check(t)()
	c := newTestCluster(2, 2, 64)
	c.Fault = Faults{MaxAttempts: 3, FailureRate: 1.0, Seed: 1}
	writeRecords(t, c, "in/0", [][2]string{{"a", "x"}})
	if _, err := c.Run(identityJob([]string{"in/0"}, "out/")); err == nil {
		t.Fatal("job unexpectedly succeeded at 100% failure rate")
	}
}
