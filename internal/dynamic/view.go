package dynamic

import (
	"fmt"

	"ffmr/internal/core"
	"ffmr/internal/graph"
)

// This file is the snapshot read path: a View materializes a completed
// run's persisted residual network into an immutable, query-optimized
// form — per-edge committed flow and residual capacities, the min-cut
// side of every vertex, and the cut itself — so flow-value, min-cut-
// membership and residual-capacity queries are O(1) array lookups with
// no DFS reads. The flow service keeps one View resident per snapshot
// generation and answers queries against it while new generations are
// being solved; a View never changes after BuildView returns, so readers
// need no locks.

// View is an immutable query view over one Snapshot. All exported
// fields are read-only after BuildView.
type View struct {
	// Gen is the snapshot's generation (0 for the base solve, +1 per
	// applied batch).
	Gen int
	// FlowValue is the snapshot's maximum-flow value.
	FlowValue int64
	// NumVertices, Source and Sink mirror the snapshot's input graph.
	NumVertices int
	Source      graph.VertexID
	Sink        graph.VertexID

	// edges[id] is the query record for EdgeID id (== index in the
	// input's edge list; dynamic updates never renumber).
	edges []EdgeView
	// sourceSide[v] reports whether v is reachable from the source in
	// the residual network — the source side of a minimum cut.
	sourceSide []bool
	// cut lists the edges crossing the minimum cut in the source→sink
	// direction; cutCap is their total crossing capacity, which the
	// max-flow min-cut theorem makes equal to FlowValue.
	cut    []graph.EdgeID
	cutCap int64
}

// EdgeView is one edge's committed flow and residual capacities.
type EdgeView struct {
	U, V     graph.VertexID
	Cap      int64
	Directed bool
	// Flow is the committed flow in canonical (U→V) orientation;
	// negative means net flow V→U (possible on undirected edges).
	Flow int64
	// ResidualFwd is the residual capacity U→V; ResidualRev is V→U. For
	// a directed edge ResidualRev is the cancelable flow; for an
	// undirected edge it is Cap+Flow.
	ResidualFwd int64
	ResidualRev int64
}

// BuildView reads the snapshot's persisted records (plus its pending
// delta table, non-empty only under TerminationPaper) and materializes
// the query view. The snapshot must have been produced with
// KeepIntermediate, which Solve forces.
func BuildView(fsys interface {
	List(prefix string) []string
	ReadFile(name string) ([]byte, error)
}, snap *Snapshot) (*View, error) {
	flows, err := readFlows(fsys, snap.StatePrefix)
	if err != nil {
		return nil, err
	}
	pendingData, err := fsys.ReadFile(snap.PendingDeltas)
	if err != nil {
		return nil, fmt.Errorf("dynamic: view: pending deltas: %w", err)
	}
	pending, err := core.DecodeDeltas(pendingData)
	if err != nil {
		return nil, fmt.Errorf("dynamic: view: pending deltas: %w", err)
	}
	for id, d := range pending {
		flows[id] += d
	}

	in := snap.Input
	v := &View{
		Gen:         snap.Gen,
		FlowValue:   snap.Result.MaxFlow,
		NumVertices: in.NumVertices,
		Source:      in.Source,
		Sink:        in.Sink,
		edges:       make([]EdgeView, len(in.Edges)),
	}
	for i := range in.Edges {
		e := &in.Edges[i]
		f := flows[graph.EdgeID(i)]
		ev := EdgeView{U: e.U, V: e.V, Cap: e.Cap, Directed: e.Directed, Flow: f}
		ev.ResidualFwd = e.Cap - f
		if e.Directed {
			ev.ResidualRev = f
		} else {
			ev.ResidualRev = e.Cap + f
		}
		v.edges[i] = ev
	}
	v.computeCut()
	return v, nil
}

// computeCut runs the textbook min-cut extraction: BFS from the source
// over positive-residual arcs; the reachable set is the cut's source
// side, and every edge crossing outward with positive capacity in the
// crossing direction is a cut edge.
func (v *View) computeCut() {
	type arc struct {
		to   graph.VertexID
		next int32
	}
	head := make([]int32, v.NumVertices)
	for i := range head {
		head[i] = -1
	}
	var arcs []arc
	add := func(u, w graph.VertexID) {
		arcs = append(arcs, arc{to: w, next: head[u]})
		head[u] = int32(len(arcs) - 1)
	}
	for i := range v.edges {
		e := &v.edges[i]
		if e.ResidualFwd > 0 {
			add(e.U, e.V)
		}
		if e.ResidualRev > 0 {
			add(e.V, e.U)
		}
	}
	v.sourceSide = make([]bool, v.NumVertices)
	v.sourceSide[v.Source] = true
	queue := []graph.VertexID{v.Source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for ai := head[u]; ai >= 0; ai = arcs[ai].next {
			if w := arcs[ai].to; !v.sourceSide[w] {
				v.sourceSide[w] = true
				queue = append(queue, w)
			}
		}
	}
	for i := range v.edges {
		e := &v.edges[i]
		us, vs := v.sourceSide[e.U], v.sourceSide[e.V]
		switch {
		case us && !vs:
			// Crossing U→V: capacity Cap in the crossing direction.
			if e.Cap > 0 {
				v.cut = append(v.cut, graph.EdgeID(i))
				v.cutCap += e.Cap
			}
		case vs && !us && !e.Directed:
			// An undirected edge crossing V→U carries Cap that way too; a
			// directed one carries nothing backward.
			if e.Cap > 0 {
				v.cut = append(v.cut, graph.EdgeID(i))
				v.cutCap += e.Cap
			}
		}
	}
}

// Edge returns the query record for one edge, reporting ok=false for an
// out-of-range ID.
func (v *View) Edge(id graph.EdgeID) (EdgeView, bool) {
	if int(id) < 0 || int(id) >= len(v.edges) {
		return EdgeView{}, false
	}
	return v.edges[id], true
}

// NumEdges returns the number of edges in the view.
func (v *View) NumEdges() int { return len(v.edges) }

// SourceSide reports whether a vertex lies on the source side of the
// minimum cut (ok=false for an out-of-range vertex).
func (v *View) SourceSide(u graph.VertexID) (bool, bool) {
	if int(u) < 0 || int(u) >= v.NumVertices {
		return false, false
	}
	return v.sourceSide[u], true
}

// MinCut returns the cut edges (source→sink crossing) and their total
// crossing capacity. The returned slice is owned by the view; treat it
// as read-only.
func (v *View) MinCut() ([]graph.EdgeID, int64) { return v.cut, v.cutCap }
