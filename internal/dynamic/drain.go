package dynamic

import (
	"fmt"

	"ffmr/internal/graph"
)

// This file computes the repair phase's flow deltas. A violating edge —
// one the batch left carrying more flow than its new capacity permits —
// sheds its excess in order of preference:
//
//  1. Reroute: push the excess from the edge's tail to its head along an
//     augmenting path in the residual network of the updated graph
//     (excluding the violating edge itself). The flow value is
//     unchanged, and — crucially for warm-restart cost — if the old flow
//     was maximum and the batch only decreased capacities, the rerouted
//     flow is still maximum, so the warm run converges immediately.
//     Cancelling a cycle of committed flow through the edge is the
//     special case where the residual path consists solely of reverse
//     residual capacity, so this strictly generalizes flow-decomposition
//     cycle cancellation.
//  2. Drain: cancel a source-to-sink walk of committed flow through the
//     edge, lowering the flow value; the warm FFMR rounds re-augment
//     against the updated residual network afterwards.
//
// Flow conservation at every vertex except s and t guarantees the drain
// walk exists while any excess remains, and integer capacities make
// every step cancel at least one unit, so the loop terminates.

// drainPlan is the computed repair: flow deltas in canonical
// orientation, the (non-positive) change to the committed flow value,
// how many edges violated their updated capacity, and how much excess
// was rerouted rather than drained.
type drainPlan struct {
	deltas     map[graph.EdgeID]int64
	flowDelta  int64
	violations int
	rerouted   int64
}

// step is one traversal of an edge during a repair search: dir +1 means
// the edge was crossed U -> V, -1 means V -> U.
type step struct {
	id  graph.EdgeID
	dir int64
}

// computeDrain repairs the committed flows against the updated
// capacities and returns the per-edge flow deltas the drain job must
// broadcast.
func computeDrain(updated *graph.Input, flows map[graph.EdgeID]int64) (*drainPlan, error) {
	plan := &drainPlan{deltas: make(map[graph.EdgeID]int64)}

	f := make(map[graph.EdgeID]int64, len(flows))
	for id, v := range flows {
		if v == 0 {
			continue
		}
		if int(id) >= len(updated.Edges) {
			return nil, fmt.Errorf("dynamic: record flow on unknown edge %d", id)
		}
		f[id] = v
	}

	capF := func(id graph.EdgeID) int64 { return updated.Edges[id].Cap }
	capR := func(id graph.EdgeID) int64 {
		if updated.Edges[id].Directed {
			return 0
		}
		return updated.Edges[id].Cap
	}

	// Violations in deterministic (edge ID) order. An edge violates in
	// at most one direction: forward when f > capF, reverse when
	// -f > capR.
	var violating []graph.EdgeID
	for id := range updated.Edges {
		id := graph.EdgeID(id)
		if f[id] > capF(id) || -f[id] > capR(id) {
			violating = append(violating, id)
		}
	}
	plan.violations = len(violating)
	if len(violating) == 0 {
		return plan, nil
	}

	// Adjacency over every edge (capacity changes make any edge usable
	// by the residual search, flow-carrying or not).
	adj := make([][]graph.EdgeID, updated.NumVertices)
	for id := range updated.Edges {
		e := &updated.Edges[id]
		eid := graph.EdgeID(id)
		adj[e.U] = append(adj[e.U], eid)
		adj[e.V] = append(adj[e.V], eid)
	}

	// residual capacity crossing edge id out of vertex x.
	resid := func(id graph.EdgeID, x graph.VertexID) int64 {
		if x == updated.Edges[id].U {
			return capF(id) - f[id]
		}
		return capR(id) + f[id]
	}
	// committed flow crossing edge id out of vertex x (skeleton arcs).
	carrying := func(id graph.EdgeID, x graph.VertexID) int64 {
		if x == updated.Edges[id].U {
			return f[id]
		}
		return -f[id]
	}
	// push moves amount along a search path; dir orients each step's
	// delta into the canonical (U -> V positive) frame.
	push := func(path []step, amount int64) {
		for _, s := range path {
			f[s.id] += s.dir * amount
		}
	}
	pathMin := func(path []step, weight func(graph.EdgeID, graph.VertexID) int64, bound int64) int64 {
		for _, s := range path {
			from := updated.Edges[s.id].U
			if s.dir < 0 {
				from = updated.Edges[s.id].V
			}
			if w := weight(s.id, from); w < bound {
				bound = w
			}
		}
		return bound
	}

	for _, vid := range violating {
	repair:
		for {
			var exc int64
			var from, to graph.VertexID
			var dir int64
			e := &updated.Edges[vid]
			switch {
			case f[vid] > capF(vid):
				exc, from, to, dir = f[vid]-capF(vid), e.U, e.V, 1
			case -f[vid] > capR(vid):
				exc, from, to, dir = -f[vid]-capR(vid), e.V, e.U, -1
			default:
				// Repaired (possibly as a side effect of an earlier
				// violation's walks).
				break repair
			}

			// Preferred repair: reroute the excess through the residual
			// network, keeping the flow value.
			if path, ok := bfsSearch(adj, updated, from, to, vid, resid); ok {
				delta := pathMin(path, resid, exc)
				if delta <= 0 {
					return nil, fmt.Errorf("dynamic: reroute stalled on edge %d", vid)
				}
				push(path, delta)
				f[vid] -= dir * delta
				plan.rerouted += delta
				continue
			}

			// Fallback: drain a source-to-sink flow walk through the
			// edge. When no residual from->to path exists, the two
			// skeleton segments cannot share an edge: a shared edge r
			// would chain to ~> r ~> from into a committed-flow walk
			// from to back to from, whose reversal is a residual
			// from->to path — contradiction. So the walk never repeats
			// an edge and its minimum is a safe cancellation bottleneck.
			p1, ok := bfsSearch(adj, updated, updated.Source, from, vid, carrying)
			if !ok {
				return nil, fmt.Errorf("dynamic: no flow path from source to vertex %d; records violate conservation", from)
			}
			p2, ok := bfsSearch(adj, updated, to, updated.Sink, vid, carrying)
			if !ok {
				return nil, fmt.Errorf("dynamic: no flow path from vertex %d to sink; records violate conservation", to)
			}
			delta := pathMin(p1, carrying, pathMin(p2, carrying, exc))
			if delta <= 0 {
				return nil, fmt.Errorf("dynamic: flow decomposition stalled on edge %d", vid)
			}
			// Cancelling committed flow = pushing against it.
			for i := range p1 {
				p1[i].dir = -p1[i].dir
			}
			for i := range p2 {
				p2[i].dir = -p2[i].dir
			}
			push(p1, delta)
			push(p2, delta)
			f[vid] -= dir * delta
			plan.flowDelta -= delta
		}
	}

	// Deltas are the canonical flow changes the repair produced.
	ids := make(map[graph.EdgeID]struct{}, len(f)+len(flows))
	for id := range f {
		ids[id] = struct{}{}
	}
	for id := range flows {
		ids[id] = struct{}{}
	}
	for id := range ids {
		if d := f[id] - flows[id]; d != 0 {
			plan.deltas[id] = d
		}
	}
	return plan, nil
}

// bfsSearch finds a shortest path of edge traversals from src to dst
// whose per-step weight (residual capacity for reroutes, committed flow
// for skeleton walks) is positive, never crossing edge skip in either
// direction. Adjacency lists are in edge-ID order, so the search is
// deterministic. An empty path (src == dst) is valid.
func bfsSearch(adj [][]graph.EdgeID, in *graph.Input, src, dst graph.VertexID,
	skip graph.EdgeID, weight func(graph.EdgeID, graph.VertexID) int64) ([]step, bool) {
	if src == dst {
		return nil, true
	}
	type prevRec struct {
		from graph.VertexID
		s    step
	}
	prev := make(map[graph.VertexID]prevRec)
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, id := range adj[x] {
			if id == skip || weight(id, x) <= 0 {
				continue
			}
			e := &in.Edges[id]
			y := e.V
			dir := int64(1)
			if x == e.V {
				y = e.U
				dir = -1
			}
			if y == src {
				continue
			}
			if _, seen := prev[y]; seen {
				continue
			}
			prev[y] = prevRec{from: x, s: step{id: id, dir: dir}}
			if y == dst {
				var path []step
				for at := dst; at != src; at = prev[at].from {
					path = append(path, prev[at].s)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, y)
		}
	}
	return nil, false
}
