package dynamic

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// This file holds the two MapReduce jobs of the repair pipeline. Both
// are map-side record rewrites with an identity reducer, so their output
// is partition-aligned part files usable as a warm round's schimmy base.
// Both carry JobSpecs registered with the distributed backend, so they
// run identically on the simulated engine and on distmr workers.

// Job kind names registered with the distributed backend.
const (
	KindApplyUpdates = "dynamic/apply"
	KindDrain        = "dynamic/drain"
)

// capPair is an edge's updated capacity in both directions.
type capPair struct {
	Fwd, Rev int64
}

// insertEdge is one inserted edge with its assigned EdgeID and resolved
// directional capacities.
type insertEdge struct {
	ID       graph.EdgeID
	U, V     graph.VertexID
	Fwd, Rev int64
}

// applyParams parameterizes the apply job for reconstruction on a
// worker.
type applyParams struct {
	PendingFile  string
	Caps         map[graph.EdgeID]capPair
	Inserts      []insertEdge
	SentTracking bool
}

// drainParams parameterizes the drain job.
type drainParams struct {
	DeltasFile string
}

func encodeParams(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("dynamic: encode job params: %v", err))
	}
	return buf.Bytes()
}

func decodeParams(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("dynamic: decode job params: %w", err)
	}
	return nil
}

func init() {
	distmr.RegisterKind(KindApplyUpdates, func(params []byte) (*distmr.JobCode, error) {
		var p applyParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &distmr.JobCode{
			NewMapper:  func() mapreduce.Mapper { return &applyMapper{p: &p} },
			NewReducer: func() mapreduce.Reducer { return passReducer{} },
		}, nil
	})
	distmr.RegisterKind(KindDrain, func(params []byte) (*distmr.JobCode, error) {
		var p drainParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &distmr.JobCode{
			NewMapper:  func() mapreduce.Mapper { return &drainMapper{file: p.DeltasFile} },
			NewReducer: func() mapreduce.Reducer { return passReducer{} },
		}, nil
	})
}

// buildApplyParams resolves a validated batch into the apply job's
// parameters: final directional capacities for every retargeted base
// edge and the inserted edges with their assigned IDs. Resolution runs
// against the already-updated input, so several updates to one edge in
// one batch collapse to the final value.
func buildApplyParams(snap *Snapshot, batch []graph.Update, updated *graph.Input, pendingFile string) *applyParams {
	baseEdges := len(snap.Input.Edges)
	caps := make(map[graph.EdgeID]capPair)
	for i := range batch {
		u := &batch[i]
		if u.Op != graph.UpdateSetCap || int(u.ID) >= baseEdges {
			continue
		}
		e := &updated.Edges[u.ID]
		cp := capPair{Fwd: e.Cap, Rev: e.Cap}
		if e.Directed {
			cp.Rev = 0
		}
		caps[u.ID] = cp
	}
	var inserts []insertEdge
	for i := baseEdges; i < len(updated.Edges); i++ {
		e := &updated.Edges[i]
		rev := e.Cap
		if e.Directed {
			rev = 0
		}
		inserts = append(inserts, insertEdge{
			ID: graph.EdgeID(i), U: e.U, V: e.V, Fwd: e.Cap, Rev: rev,
		})
	}
	return &applyParams{
		PendingFile:  pendingFile,
		Caps:         caps,
		Inserts:      inserts,
		SentTracking: snap.Opts.Variant >= core.FF5,
	}
}

// runApplyJob rewrites the snapshot's records under the update batch and
// returns the DFS prefix of the rewritten state plus the job's simulated
// cost.
func runApplyJob(cluster *mapreduce.Cluster, snap *Snapshot, batch []graph.Update,
	updated *graph.Input, warmPrefix string, pendingData []byte, parent *trace.Span) (string, time.Duration, error) {
	fs := cluster.FS
	pendingFile := warmPrefix + "pending-deltas"
	if err := fs.WriteFile(pendingFile, pendingData); err != nil {
		return "", 0, err
	}
	p := buildApplyParams(snap, batch, updated, pendingFile)
	out := warmPrefix + "state-apply/"
	job := &mapreduce.Job{
		Name:         fmt.Sprintf("dynamic-apply-%04d", snap.Gen+1),
		Inputs:       fs.List(snap.StatePrefix),
		OutputPrefix: out,
		NumReducers:  snap.Opts.Reducers,
		SideFiles:    []string{pendingFile},
		Parent:       parent,
		NewMapper:    func() mapreduce.Mapper { return &applyMapper{p: p} },
		NewReducer:   func() mapreduce.Reducer { return passReducer{} },
		Spec:         &mapreduce.JobSpec{Kind: KindApplyUpdates, Params: encodeParams(p)},
	}
	res, err := cluster.Run(job)
	if err != nil {
		return "", 0, fmt.Errorf("dynamic: apply job: %w", err)
	}
	return out, res.SimTime, nil
}

// runDrainJob folds the cancellation deltas into every record and
// returns the drained state's prefix plus the job's simulated cost.
func runDrainJob(cluster *mapreduce.Cluster, snap *Snapshot, deltas map[graph.EdgeID]int64,
	warmPrefix, statePrefix string, parent *trace.Span) (string, time.Duration, error) {
	fs := cluster.FS
	drainFile := warmPrefix + "drain-deltas"
	if err := fs.WriteFile(drainFile, core.EncodeDeltas(deltas)); err != nil {
		return "", 0, err
	}
	out := warmPrefix + "state/"
	p := &drainParams{DeltasFile: drainFile}
	job := &mapreduce.Job{
		Name:         fmt.Sprintf("dynamic-drain-%04d", snap.Gen+1),
		Inputs:       fs.List(statePrefix),
		OutputPrefix: out,
		NumReducers:  snap.Opts.Reducers,
		SideFiles:    []string{drainFile},
		Parent:       parent,
		NewMapper:    func() mapreduce.Mapper { return &drainMapper{file: p.DeltasFile} },
		NewReducer:   func() mapreduce.Reducer { return passReducer{} },
		Spec:         &mapreduce.JobSpec{Kind: KindDrain, Params: encodeParams(p)},
	}
	res, err := cluster.Run(job)
	if err != nil {
		return "", 0, fmt.Errorf("dynamic: drain job: %w", err)
	}
	return out, res.SimTime, nil
}

// applyMapper rewrites one vertex record under the batch: it folds the
// previous run's pending deltas into every edge copy, swaps in the
// updated capacities (adjacency halves and excess-path hop copies
// alike — a stale hop capacity would corrupt every later residual
// check), attaches inserted half-edges, prunes paths left without
// residual capacity, and zeroes the FF5 sent flags (a stale flag would
// suppress re-sends over edges whose capacity just changed).
type applyMapper struct {
	p *applyParams

	loaded  bool
	pending map[graph.EdgeID]int64
}

func (m *applyMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	val := new(graph.VertexValue)
	if err := graph.DecodeValueInto(value, val); err != nil {
		return err
	}
	if !val.IsMaster() {
		return fmt.Errorf("dynamic: apply mapper got a non-master record for vertex %d", u)
	}
	if !m.loaded {
		m.pending, err = core.DecodeDeltas(ctx.SideFile(m.p.PendingFile))
		if err != nil {
			return err
		}
		m.loaded = true
	}

	// Pending deltas first, so flows are current before capacities move.
	if len(m.pending) > 0 {
		for i := range val.Eu {
			if d, ok := m.pending[val.Eu[i].ID]; ok {
				val.Eu[i].ApplyDelta(d)
			}
		}
		for _, paths := range [2][]graph.ExcessPath{val.Su, val.Tu} {
			for pi := range paths {
				for ei := range paths[pi].Edges {
					pe := &paths[pi].Edges[ei]
					if d, ok := m.pending[pe.ID]; ok {
						pe.ApplyDelta(d)
					}
				}
			}
		}
	}

	// Capacity rewrite. Caps are stored canonically (Fwd/Rev of the
	// U->V orientation); each half and hop translates by its own
	// orientation.
	for i := range val.Eu {
		e := &val.Eu[i]
		cp, ok := m.p.Caps[e.ID]
		if !ok {
			continue
		}
		if e.Fwd {
			e.Cap, e.RevCap = cp.Fwd, cp.Rev
		} else {
			e.Cap, e.RevCap = cp.Rev, cp.Fwd
		}
		ctx.Inc("half edges recapped", 1)
		if e.Fwd && (e.Flow > e.Cap || -e.Flow > e.RevCap) {
			ctx.Inc("violating edges", 1)
		}
	}
	for _, paths := range [2][]graph.ExcessPath{val.Su, val.Tu} {
		for pi := range paths {
			for ei := range paths[pi].Edges {
				pe := &paths[pi].Edges[ei]
				if cp, ok := m.p.Caps[pe.ID]; ok {
					if pe.Fwd {
						pe.Cap = cp.Fwd
					} else {
						pe.Cap = cp.Rev
					}
				}
			}
		}
	}

	// Inserted half-edges, then restore the adjacency's (To, ID) order
	// so downstream extension passes stay deterministic.
	appended := 0
	for i := range m.p.Inserts {
		ins := &m.p.Inserts[i]
		if ins.U == u {
			val.Eu = append(val.Eu, graph.Edge{
				To: ins.V, ID: ins.ID, Cap: ins.Fwd, RevCap: ins.Rev, Fwd: true,
			})
			appended++
		}
		if ins.V == u {
			val.Eu = append(val.Eu, graph.Edge{
				To: ins.U, ID: ins.ID, Cap: ins.Rev, RevCap: ins.Fwd, Fwd: false,
			})
			appended++
		}
	}
	if appended > 0 {
		ctx.Inc("half edges inserted", int64(appended))
		sort.Slice(val.Eu, func(i, j int) bool {
			if val.Eu[i].To != val.Eu[j].To {
				return val.Eu[i].To < val.Eu[j].To
			}
			return val.Eu[i].ID < val.Eu[j].ID
		})
	}

	// Prune paths the new capacities saturated (ApplyAugmentedEdges with
	// no deltas is exactly the Fig. 3 line 4 pruning pass).
	if dropped := core.ApplyAugmentedEdges(val, nil); dropped > 0 {
		ctx.Inc("paths dropped", int64(dropped))
	}

	// Sent flags restart from scratch: degree may have changed, and every
	// suppressed extension must be re-offered against the new capacities.
	if m.p.SentTracking {
		val.SentS = make([]uint64, len(val.Eu))
		val.SentT = make([]uint64, len(val.Eu))
	}

	ctx.Emit(key, graph.EncodeValue(val))
	return nil
}

// drainMapper folds the flow-cancellation deltas into one record. It is
// deliberately nothing but the paper's own delta-application pass (MAP
// lines 1-4) run out-of-band: adjacency and hop copies update in
// canonical orientation and paths left without residual capacity are
// pruned.
type drainMapper struct {
	file string

	loaded bool
	deltas map[graph.EdgeID]int64
}

func (m *drainMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	val := new(graph.VertexValue)
	if err := graph.DecodeValueInto(value, val); err != nil {
		return err
	}
	if !val.IsMaster() {
		return fmt.Errorf("dynamic: drain mapper got a non-master record for vertex %d", u)
	}
	if !m.loaded {
		m.deltas, err = core.DecodeDeltas(ctx.SideFile(m.file))
		if err != nil {
			return err
		}
		m.loaded = true
	}
	if dropped := core.ApplyAugmentedEdges(val, m.deltas); dropped > 0 {
		ctx.Inc("paths dropped", int64(dropped))
	}
	ctx.Emit(key, graph.EncodeValue(val))
	return nil
}

// passReducer writes each mapped record through unchanged. Every key
// carries exactly one record (the jobs are per-vertex rewrites), which
// it asserts.
type passReducer struct{}

func (passReducer) Reduce(ctx *mapreduce.TaskContext, key, master []byte, values *mapreduce.Values) error {
	vb := values.Next()
	if vb == nil {
		return fmt.Errorf("dynamic: reduce group with no record")
	}
	ctx.Emit(key, vb)
	if values.Next() != nil {
		u, _ := graph.DecodeKey(key)
		return fmt.Errorf("dynamic: vertex %d has duplicate records", u)
	}
	return nil
}
