package dynamic

import (
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
)

// buildViewChecked materializes a snapshot's view and asserts the
// whole-view invariants that hold for any converged strict-termination
// run: the flow value matches the snapshot, every edge respects its
// capacity in both residual directions, the source and sink land on
// their own cut sides, and — the max-flow min-cut theorem — the cut's
// crossing capacity equals the flow value.
func buildViewChecked(t *testing.T, fsys interface {
	List(prefix string) []string
	ReadFile(name string) ([]byte, error)
}, snap *Snapshot) *View {
	t.Helper()
	v, err := BuildView(fsys, snap)
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	if v.FlowValue != snap.Result.MaxFlow {
		t.Fatalf("view flow = %d, snapshot says %d", v.FlowValue, snap.Result.MaxFlow)
	}
	if v.Gen != snap.Gen {
		t.Fatalf("view gen = %d, snapshot gen %d", v.Gen, snap.Gen)
	}
	for i := 0; i < v.NumEdges(); i++ {
		e, ok := v.Edge(graph.EdgeID(i))
		if !ok {
			t.Fatalf("edge %d missing", i)
		}
		if e.ResidualFwd < 0 || e.ResidualRev < 0 {
			t.Fatalf("edge %d has negative residual: fwd %d rev %d (flow %d, cap %d)",
				i, e.ResidualFwd, e.ResidualRev, e.Flow, e.Cap)
		}
	}
	if s, ok := v.SourceSide(v.Source); !ok || !s {
		t.Fatal("source is not on the source side of the cut")
	}
	if s, ok := v.SourceSide(v.Sink); !ok || s {
		t.Fatal("sink is on the source side of the cut (run not converged?)")
	}
	if _, cap := v.MinCut(); cap != v.FlowValue {
		t.Fatalf("min-cut capacity %d != max flow %d", cap, v.FlowValue)
	}
	return v
}

func TestViewPathGraph(t *testing.T) {
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, pathGraph(3, 5), core.Options{})
	v := buildViewChecked(t, cluster.FS, snap)

	// A saturated path: every edge carries 5 of 5.
	for i := 0; i < v.NumEdges(); i++ {
		e, _ := v.Edge(graph.EdgeID(i))
		if e.Flow != 5 || e.ResidualFwd != 0 {
			t.Errorf("edge %d: flow %d residual %d, want 5/0", i, e.Flow, e.ResidualFwd)
		}
	}
	cut, _ := v.MinCut()
	if len(cut) != 1 {
		t.Errorf("path min cut has %d edges, want 1", len(cut))
	}
	if _, ok := v.Edge(graph.EdgeID(v.NumEdges())); ok {
		t.Error("out-of-range edge lookup reported ok")
	}
	if _, ok := v.SourceSide(graph.VertexID(v.NumVertices)); ok {
		t.Error("out-of-range vertex lookup reported ok")
	}
}

func TestViewSmallWorldAndAcrossGenerations(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, in, core.Options{})
	buildViewChecked(t, cluster.FS, snap)

	// Views must stay correct across warm generations: apply randomized
	// batches and re-verify the cut invariants each time.
	profile := graphgen.DefaultUpdateProfile()
	cur := snap
	for g := 1; g <= 3; g++ {
		batch, err := graphgen.GenerateUpdates(cur.Input, 12, profile, int64(100*g))
		if err != nil {
			t.Fatal(err)
		}
		out := applyChecked(t, cluster, cur, batch)
		cur = out.Snapshot
		v := buildViewChecked(t, cluster.FS, cur)
		if v.Gen != g {
			t.Fatalf("generation %d view reports gen %d", g, v.Gen)
		}
	}
}
