// Package dynamic implements incremental max-flow over update batches:
// it takes a completed FFMR run's persisted state (vertex records with
// residual capacities and excess paths in the DFS), applies a batch of
// edge updates (insert, delete, capacity increase/decrease), repairs any
// flow the batch invalidated, and resumes FFMR warm from the repaired
// records instead of recomputing from the input graph.
//
// The key observation is that FFMR's own machinery already supports
// this: the per-vertex records are the residual network, and the
// AugmentedEdges delta broadcast is exactly the vehicle an update batch
// needs. Updates split into two classes. Residual-monotone updates —
// inserts and capacity increases — only add residual capacity, so the
// warm run simply continues augmenting. Flow-breaking updates — deletes
// and capacity decreases below committed flow — leave edges carrying
// more flow than they may (f > cap), which the repair phase resolves
// driver-side on the updated residual network: excess flow is first
// rerouted around the violating edge through residual capacity (flow
// value preserved — and if the batch only removed capacity, the rerouted
// flow is still maximum, so the warm run converges immediately), and
// whatever cannot be rerouted is drained by cancelling a source-to-sink
// walk of committed flow through the edge (flow value lowered). The
// resulting deltas are folded into every record by a drain MapReduce
// job; afterwards no record violates its capacity and RunWarm
// re-augments to the new maximum.
//
// The pipeline per batch is: apply job (rewrite capacities, attach
// inserted half-edges, fold the previous run's pending deltas, zero FF5
// sent flags) -> driver-side drain computation -> drain job (apply
// cancellation deltas) -> core.RunWarm. All jobs carry distmr JobSpecs,
// so the whole pipeline runs unchanged on the simulated engine or the
// distributed backend.
//
// Invariants: EdgeIDs are never reused — deletion zeroes capacity but
// keeps the half-edges in place, so IDs stored inside persisted excess
// paths stay resolvable. Inserted edges must connect vertices that
// already have a record (degree >= 1 in the pre-batch graph). Warm-run
// per-round counters are not comparable to a cold run's (see DESIGN.md
// section 8); only the resulting max-flow value is, and the differential
// tests hold it equal to a from-scratch oracle recompute.
package dynamic

import (
	"fmt"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// Snapshot ties together everything needed to apply an update batch to a
// completed run: the input graph the run computed on, the resolved
// options (fixing variant, reducer count and DFS prefix), the run's
// result, and where its final records and pending deltas live in the
// DFS. Snapshots chain: Apply returns the snapshot of the warm run it
// performed.
type Snapshot struct {
	// Input is the graph this snapshot's flow was computed on. Inserted
	// edges are appended to it by Apply, so EdgeID == index holds at
	// every generation.
	Input *graph.Input
	// Opts are the run's options with defaults resolved. Reducers is
	// load-bearing: every job of the pipeline must reuse it so output
	// files stay partition-aligned for schimmy rounds.
	Opts core.Options
	// Result is the run that produced the state.
	Result *core.Result
	// StatePrefix locates the final vertex records; PendingDeltas names
	// the AugmentedEdges file the run left unapplied (non-empty only
	// under TerminationPaper).
	StatePrefix   string
	PendingDeltas string
	// Root is the original run's DFS prefix; Gen counts applied batches
	// and namespaces each warm run under Root.
	Root string
	Gen  int
}

// Solve performs the cold base run and returns its snapshot. It forces
// KeepIntermediate (the persisted state is the whole point) and resolves
// option defaults so later batches see the same effective configuration.
func Solve(cluster *mapreduce.Cluster, in *graph.Input, opts core.Options) (*Snapshot, error) {
	opts = opts.WithDefaults(cluster.Nodes * cluster.SlotsPerNode)
	opts.KeepIntermediate = true
	res, err := core.Run(cluster, in, opts)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Input:         in,
		Opts:          opts,
		Result:        res,
		StatePrefix:   core.FinalGraphPrefix(opts, res.Rounds),
		PendingDeltas: core.PendingDeltasFile(opts, res.Rounds),
		Root:          opts.PathPrefix,
		Gen:           0,
	}, nil
}

// Outcome reports what one Apply call did.
type Outcome struct {
	// Snapshot is the post-batch state, ready for the next Apply.
	Snapshot *Snapshot
	// Warm is the warm restart's result; Warm.MaxFlow is the maximum flow
	// of the updated graph.
	Warm *core.Result
	// Violations counts edges the batch left carrying more flow than
	// capacity. ReroutedFlow is how much excess the repair shifted onto
	// alternative residual paths (flow value preserved); CancelledFlow is
	// what remained and had to be drained to source/sink (flow value
	// lowered, re-augmented by the warm run). Both are zero when the
	// batch was residual-monotone. DrainRan reports whether the drain job
	// executed.
	Violations    int
	ReroutedFlow  int64
	CancelledFlow int64
	DrainRan      bool
	// RepairSimTime is the modelled cluster cost of the apply and drain
	// jobs, so warm-versus-cold comparisons can charge the full
	// incremental pipeline, not just the warm rounds.
	RepairSimTime time.Duration
}

// Apply folds an update batch into a snapshot: it rewrites the persisted
// records (apply job), cancels any flow the batch invalidated (drain
// computation + drain job) and warm-restarts FFMR to re-augment. The
// snapshot itself is read-only; each call works under a fresh
// Root/warm-NNNN/ DFS prefix, so a failed Apply leaves the snapshot
// usable.
func Apply(cluster *mapreduce.Cluster, snap *Snapshot, batch []graph.Update) (*Outcome, error) {
	if err := validateBatch(snap.Input, batch); err != nil {
		return nil, err
	}
	updated, err := graph.ApplyUpdates(snap.Input, batch)
	if err != nil {
		return nil, err
	}
	fs := cluster.FS
	tr := snap.Opts.Tracer
	if tr != nil {
		cluster.Tracer = tr
	}
	log := obsv.Or(snap.Opts.Log)

	gen := snap.Gen + 1
	warmPrefix := fmt.Sprintf("%swarm-%04d/", snap.Root, gen)
	fs.DeletePrefix(warmPrefix)

	// The previous run's unapplied deltas ride along as the apply job's
	// side file; the updated flow they imply also feeds the driver-side
	// skeleton below.
	pendingData, err := fs.ReadFile(snap.PendingDeltas)
	if err != nil {
		return nil, fmt.Errorf("dynamic: pending deltas: %w (was the base run KeepIntermediate?)", err)
	}
	pending, err := core.DecodeDeltas(pendingData)
	if err != nil {
		return nil, fmt.Errorf("dynamic: pending deltas: %w", err)
	}

	// Committed flow per edge, in canonical orientation, from the
	// persisted records plus the pending table.
	flows, err := readFlows(fs, snap.StatePrefix)
	if err != nil {
		return nil, err
	}
	for id, d := range pending {
		flows[id] += d
	}

	drain, err := computeDrain(updated, flows)
	if err != nil {
		return nil, err
	}
	log.Info("update batch repair", "gen", gen, "updates", len(batch),
		"violations", drain.violations, "rerouted_flow", drain.rerouted,
		"cancelled_flow", -drain.flowDelta, "drain_needed", len(drain.deltas) > 0)

	repairSpan := tr.Start(trace.CatRepair, fmt.Sprintf("repair-%04d", gen), nil)
	repairSpan.SetInt(trace.AttrUpdates, int64(len(batch)))
	repairSpan.SetInt(trace.AttrViolations, int64(drain.violations))
	repairSpan.SetInt(trace.AttrReroutedFlow, drain.rerouted)
	repairSpan.SetInt(trace.AttrCancelledFlow, -drain.flowDelta)

	statePrefix, repairSim, err := runApplyJob(cluster, snap, batch, updated, warmPrefix, pendingData, repairSpan)
	if err != nil {
		repairSpan.End()
		return nil, err
	}
	drainRan := false
	if len(drain.deltas) > 0 {
		var drainSim time.Duration
		statePrefix, drainSim, err = runDrainJob(cluster, snap, drain.deltas, warmPrefix, statePrefix, repairSpan)
		if err != nil {
			repairSpan.End()
			return nil, err
		}
		repairSim += drainSim
		drainRan = true
	}
	repairSpan.End()

	warmOpts := snap.Opts
	warmOpts.PathPrefix = warmPrefix
	res, err := core.RunWarm(cluster, updated, warmOpts, core.WarmStart{
		StatePrefix: statePrefix,
		BaseFlow:    snap.Result.MaxFlow + drain.flowDelta,
	})
	if err != nil {
		return nil, err
	}

	log.Info("update batch applied", "gen", gen,
		"max_flow", res.MaxFlow, "warm_rounds", res.Rounds)

	return &Outcome{
		Snapshot: &Snapshot{
			Input:         updated,
			Opts:          warmOpts,
			Result:        res,
			StatePrefix:   core.FinalGraphPrefix(warmOpts, res.Rounds),
			PendingDeltas: core.PendingDeltasFile(warmOpts, res.Rounds),
			Root:          snap.Root,
			Gen:           gen,
		},
		Warm:          res,
		Violations:    drain.violations,
		ReroutedFlow:  drain.rerouted,
		CancelledFlow: -drain.flowDelta,
		DrainRan:      drainRan,
		RepairSimTime: repairSim,
	}, nil
}

// validateBatch rejects updates the record model cannot absorb: an
// inserted edge must connect vertices that already own a record, i.e.
// have at least one (possibly zero-capacity) edge in the pre-batch
// graph. Structural checks (ranges, self-loops, negative capacities) are
// graph.ApplyUpdates's job.
func validateBatch(in *graph.Input, batch []graph.Update) error {
	var deg []int
	for i := range batch {
		u := &batch[i]
		if u.Op != graph.UpdateInsert {
			continue
		}
		if deg == nil {
			deg = make([]int, in.NumVertices)
			for j := range in.Edges {
				e := &in.Edges[j]
				if int(e.U) < len(deg) {
					deg[e.U]++
				}
				if int(e.V) < len(deg) {
					deg[e.V]++
				}
			}
		}
		for _, v := range [2]graph.VertexID{u.Edge.U, u.Edge.V} {
			if int(v) < len(deg) && deg[v] == 0 {
				return fmt.Errorf("dynamic: update %d inserts an edge at isolated vertex %d, which has no record", i, v)
			}
		}
	}
	return nil
}

// readFlows extracts each edge's committed flow (canonical orientation)
// from the persisted records. Only the Fwd half is consulted; skew
// symmetry makes the mirror redundant.
func readFlows(fsys interface {
	List(prefix string) []string
	ReadFile(name string) ([]byte, error)
}, prefix string) (map[graph.EdgeID]int64, error) {
	verts, err := core.ReadVertices(fsys, prefix)
	if err != nil {
		return nil, fmt.Errorf("dynamic: read state: %w", err)
	}
	flows := make(map[graph.EdgeID]int64)
	for _, v := range verts {
		for i := range v.Eu {
			e := &v.Eu[i]
			if e.Fwd && e.Flow != 0 {
				flows[e.ID] = e.Flow
			}
		}
	}
	return flows, nil
}
