package dynamic

import (
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
	"ffmr/internal/trace"
)

// This file is the dynamic-update acceptance harness: randomized update
// batches (inserts, deletes, capacity increases and decreases) are
// applied to the FB' crawl-chain graphs, and after every batch the
// warm-restarted flow must equal a from-scratch oracle recompute (Dinic
// and Push-Relabel) on the updated graph — on the simulated engine and
// on the distributed distmr backend.

// fbPrime builds the scaled-down FB' chain used by the dynamic
// differential: nested crawl subgraphs with random capacities and super
// source/sink taps, like the paper's FB1..FB3 at test scale.
func fbPrime(t *testing.T) []*graph.Input {
	t.Helper()
	specs := []graphgen.FBSpec{
		{Name: "FB1'", Vertices: 210},
		{Name: "FB2'", Vertices: 730},
		{Name: "FB3'", Vertices: 970},
	}
	chain, err := graphgen.CrawlChain(specs, 3, 17)
	if err != nil {
		t.Fatalf("CrawlChain: %v", err)
	}
	out := make([]*graph.Input, len(chain))
	for i, base := range chain {
		graphgen.RandomCapacities(base, 8, int64(20+i))
		withST, err := graphgen.AttachSuperSourceSink(base, 4, 3, 99)
		if err != nil {
			t.Fatalf("AttachSuperSourceSink(%s): %v", specs[i].Name, err)
		}
		out[i] = withST
	}
	return out
}

// bothOracles recomputes the max flow of in from scratch with two
// independent solvers and fails unless they agree.
func bothOracles(t *testing.T, in *graph.Input) int64 {
	t.Helper()
	net1, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("FromInput: %v", err)
	}
	dinic := maxflow.Dinic(net1, int(in.Source), int(in.Sink))
	net2, _ := maxflow.FromInput(in)
	pr := maxflow.PushRelabel(net2, int(in.Source), int(in.Sink))
	if dinic != pr {
		t.Fatalf("oracles disagree: Dinic %d, Push-Relabel %d", dinic, pr)
	}
	return dinic
}

func TestDynamicDifferentialFBChain(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	graphs := fbPrime(t)
	names := []string{"FB1'", "FB2'", "FB3'"}
	// FB1' sweeps representative variants; the larger graphs pin FF5.
	variantsFor := map[string][]core.Variant{
		"FB1'": {core.FF1, core.FF3, core.FF5},
		"FB2'": {core.FF5},
		"FB3'": {core.FF5},
	}
	for i, in := range graphs {
		in := in
		name := names[i]
		t.Run(name, func(t *testing.T) {
			for _, v := range variantsFor[name] {
				v := v
				t.Run(v.String(), func(t *testing.T) {
					cluster := testCluster(3)
					snap, err := Solve(cluster, in, core.Options{Variant: v, DeterministicAccept: true})
					if err != nil {
						t.Fatalf("Solve: %v", err)
					}
					if want := bothOracles(t, in); snap.Result.MaxFlow != want {
						t.Fatalf("cold flow = %d, oracles say %d", snap.Result.MaxFlow, want)
					}
					for gen := 1; gen <= 3; gen++ {
						batch, err := graphgen.GenerateUpdates(
							snap.Input, 25, graphgen.DefaultUpdateProfile(), int64(100*i+10*int(v)+gen))
						if err != nil {
							t.Fatalf("gen %d: GenerateUpdates: %v", gen, err)
						}
						out, err := Apply(cluster, snap, batch)
						if err != nil {
							t.Fatalf("gen %d: Apply: %v", gen, err)
						}
						if want := bothOracles(t, out.Snapshot.Input); out.Warm.MaxFlow != want {
							t.Fatalf("gen %d: warm flow = %d, oracles say %d (violations=%d cancelled=%d)",
								gen, out.Warm.MaxFlow, want, out.Violations, out.CancelledFlow)
						}
						snap = out.Snapshot
					}
				})
			}
		})
	}
}

// TestDynamicDifferentialPaperTermination exercises the pending-deltas
// path: under the paper's termination rule the cold run can stop with
// accepted paths whose deltas were never folded into the records. Apply
// must account for them, and the warm run — which uses the fixpoint
// termination rule — still converges to the true max flow of the updated
// graph.
func TestDynamicDifferentialPaperTermination(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	in := fbPrime(t)[0]
	cluster := testCluster(3)
	snap, err := Solve(cluster, in, core.Options{
		Variant: core.FF5, Termination: core.TerminationPaper, DeterministicAccept: true,
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for gen := 1; gen <= 2; gen++ {
		batch, err := graphgen.GenerateUpdates(snap.Input, 20, graphgen.DefaultUpdateProfile(), int64(gen))
		if err != nil {
			t.Fatalf("GenerateUpdates: %v", err)
		}
		out, err := Apply(cluster, snap, batch)
		if err != nil {
			t.Fatalf("gen %d: Apply: %v", gen, err)
		}
		if want := bothOracles(t, out.Snapshot.Input); out.Warm.MaxFlow != want {
			t.Fatalf("gen %d: warm flow = %d, oracles say %d", gen, out.Warm.MaxFlow, want)
		}
		snap = out.Snapshot
	}
}

// TestDynamicDifferentialDistributed runs the same batch chain on the
// simulated engine and on the real master/worker backend: both must
// match the oracles and each other round for round.
func TestDynamicDifferentialDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	in := fbPrime(t)[0]
	h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	opts := core.Options{Variant: core.FF5, DeterministicAccept: true}
	simC := testCluster(3)
	distC := testCluster(3)
	distC.Distributed = h.Master

	simSnap, err := Solve(simC, in, opts)
	if err != nil {
		t.Fatalf("simulated Solve: %v", err)
	}
	distSnap, err := Solve(distC, in, opts)
	if err != nil {
		t.Fatalf("distributed Solve: %v", err)
	}
	if simSnap.Result.MaxFlow != distSnap.Result.MaxFlow {
		t.Fatalf("cold backends disagree: simulated %d, distributed %d",
			simSnap.Result.MaxFlow, distSnap.Result.MaxFlow)
	}

	for gen := 1; gen <= 3; gen++ {
		batch, err := graphgen.GenerateUpdates(simSnap.Input, 20, graphgen.DefaultUpdateProfile(), int64(7*gen))
		if err != nil {
			t.Fatalf("GenerateUpdates: %v", err)
		}
		simOut, err := Apply(simC, simSnap, batch)
		if err != nil {
			t.Fatalf("gen %d: simulated Apply: %v", gen, err)
		}
		distOut, err := Apply(distC, distSnap, batch)
		if err != nil {
			t.Fatalf("gen %d: distributed Apply: %v", gen, err)
		}
		want := bothOracles(t, simOut.Snapshot.Input)
		if simOut.Warm.MaxFlow != want || distOut.Warm.MaxFlow != want {
			t.Fatalf("gen %d: warm flow simulated %d / distributed %d, oracles say %d",
				gen, simOut.Warm.MaxFlow, distOut.Warm.MaxFlow, want)
		}
		if simOut.Warm.Rounds != distOut.Warm.Rounds {
			t.Errorf("gen %d: warm rounds diverge: simulated %d, distributed %d",
				gen, simOut.Warm.Rounds, distOut.Warm.Rounds)
		}
		if simOut.Violations != distOut.Violations || simOut.CancelledFlow != distOut.CancelledFlow {
			t.Errorf("gen %d: repair stats diverge: sim {%d %d} dist {%d %d}", gen,
				simOut.Violations, simOut.CancelledFlow, distOut.Violations, distOut.CancelledFlow)
		}
		simSnap, distSnap = simOut.Snapshot, distOut.Snapshot
	}
}
