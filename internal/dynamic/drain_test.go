package dynamic

import (
	"testing"

	"ffmr/internal/graph"
)

// drainInput builds an Input with the given edges; source 0, sink is the
// highest-numbered vertex.
func drainInput(n int, edges ...graph.InputEdge) *graph.Input {
	return &graph.Input{
		NumVertices: n,
		Source:      0,
		Sink:        graph.VertexID(n - 1),
		Edges:       edges,
	}
}

func TestComputeDrainPathViolation(t *testing.T) {
	// s -> 1 -> 2 -> t carrying 3 units; edge 1's capacity drops to 2.
	// The only repair is an s-t walk: one unit cancelled end to end.
	in := drainInput(4,
		graph.InputEdge{U: 0, V: 1, Cap: 5},
		graph.InputEdge{U: 1, V: 2, Cap: 2},
		graph.InputEdge{U: 2, V: 3, Cap: 5},
	)
	plan, err := computeDrain(in, map[graph.EdgeID]int64{0: 3, 1: 3, 2: 3})
	if err != nil {
		t.Fatalf("computeDrain: %v", err)
	}
	if plan.violations != 1 {
		t.Errorf("violations = %d, want 1", plan.violations)
	}
	if plan.flowDelta != -1 {
		t.Errorf("flowDelta = %d, want -1", plan.flowDelta)
	}
	if plan.rerouted != 0 {
		t.Errorf("rerouted = %d, want 0 (no alternative path exists)", plan.rerouted)
	}
	want := map[graph.EdgeID]int64{0: -1, 1: -1, 2: -1}
	if len(plan.deltas) != len(want) {
		t.Fatalf("deltas = %v, want %v", plan.deltas, want)
	}
	for id, d := range want {
		if plan.deltas[id] != d {
			t.Errorf("delta[%d] = %d, want %d", id, plan.deltas[id], d)
		}
	}
}

func TestComputeDrainCancelsCycle(t *testing.T) {
	// Two units s -> 1 -> t plus one unit circulating 1 -> 2 -> 3 -> 1.
	// Deleting a cycle edge must cancel the cycle (the reroute's residual
	// path runs backwards along the remaining cycle arcs), leaving the
	// flow value untouched.
	in := drainInput(5,
		graph.InputEdge{U: 0, V: 1, Cap: 5}, // e0 s -> 1, f=2
		graph.InputEdge{U: 1, V: 4, Cap: 5}, // e1 1 -> t, f=2
		graph.InputEdge{U: 1, V: 2, Cap: 0}, // e2 cycle, f=1, deleted
		graph.InputEdge{U: 2, V: 3, Cap: 5}, // e3 cycle, f=1
		graph.InputEdge{U: 3, V: 1, Cap: 5}, // e4 cycle, f=1
	)
	plan, err := computeDrain(in, map[graph.EdgeID]int64{0: 2, 1: 2, 2: 1, 3: 1, 4: 1})
	if err != nil {
		t.Fatalf("computeDrain: %v", err)
	}
	if plan.violations != 1 {
		t.Errorf("violations = %d, want 1", plan.violations)
	}
	if plan.flowDelta != 0 {
		t.Errorf("flowDelta = %d, want 0 (cycle cancellation keeps the value)", plan.flowDelta)
	}
	want := map[graph.EdgeID]int64{2: -1, 3: -1, 4: -1}
	for id, d := range want {
		if plan.deltas[id] != d {
			t.Errorf("delta[%d] = %d, want %d", id, plan.deltas[id], d)
		}
	}
	if _, ok := plan.deltas[0]; ok {
		t.Error("s->1 flow must not change under cycle cancellation")
	}
}

func TestComputeDrainReroutesThroughSpareCapacity(t *testing.T) {
	// s -> 1 -> t carries 2 units; deleting 1 -> t must shift both units
	// onto the empty detour 1 -> 2 -> t instead of draining, keeping the
	// flow value (and maximality) intact.
	in := drainInput(4,
		graph.InputEdge{U: 0, V: 1, Cap: 2}, // e0, f=2
		graph.InputEdge{U: 1, V: 3, Cap: 0}, // e1, f=2, deleted
		graph.InputEdge{U: 1, V: 2, Cap: 2}, // e2, empty detour
		graph.InputEdge{U: 2, V: 3, Cap: 2}, // e3, empty detour
	)
	plan, err := computeDrain(in, map[graph.EdgeID]int64{0: 2, 1: 2})
	if err != nil {
		t.Fatalf("computeDrain: %v", err)
	}
	if plan.violations != 1 || plan.flowDelta != 0 {
		t.Errorf("violations=%d flowDelta=%d, want 1 and 0", plan.violations, plan.flowDelta)
	}
	if plan.rerouted != 2 {
		t.Errorf("rerouted = %d, want 2", plan.rerouted)
	}
	want := map[graph.EdgeID]int64{1: -2, 2: 2, 3: 2}
	for id, d := range want {
		if plan.deltas[id] != d {
			t.Errorf("delta[%d] = %d, want %d", id, plan.deltas[id], d)
		}
	}
	if _, ok := plan.deltas[0]; ok {
		t.Error("s->1 flow must not change under rerouting")
	}
}

func TestComputeDrainReverseOrientation(t *testing.T) {
	// Edge 1 is stored as (2,1) but carries flow 1 -> 2, i.e. canonical
	// flow -2. Making it directed removes the reverse capacity, so the
	// whole 2-unit path drains.
	in := drainInput(4,
		graph.InputEdge{U: 0, V: 1, Cap: 2},
		graph.InputEdge{U: 2, V: 1, Cap: 2, Directed: true},
		graph.InputEdge{U: 2, V: 3, Cap: 2},
	)
	plan, err := computeDrain(in, map[graph.EdgeID]int64{0: 2, 1: -2, 2: 2})
	if err != nil {
		t.Fatalf("computeDrain: %v", err)
	}
	if plan.violations != 1 {
		t.Errorf("violations = %d, want 1", plan.violations)
	}
	if plan.flowDelta != -2 {
		t.Errorf("flowDelta = %d, want -2", plan.flowDelta)
	}
	want := map[graph.EdgeID]int64{0: -2, 1: 2, 2: -2}
	for id, d := range want {
		if plan.deltas[id] != d {
			t.Errorf("delta[%d] = %d, want %d", id, plan.deltas[id], d)
		}
	}
}

func TestComputeDrainNoViolations(t *testing.T) {
	in := drainInput(3,
		graph.InputEdge{U: 0, V: 1, Cap: 5},
		graph.InputEdge{U: 1, V: 2, Cap: 5},
	)
	plan, err := computeDrain(in, map[graph.EdgeID]int64{0: 3, 1: 3})
	if err != nil {
		t.Fatalf("computeDrain: %v", err)
	}
	if plan.violations != 0 || plan.flowDelta != 0 || len(plan.deltas) != 0 {
		t.Errorf("plan = %+v, want empty", plan)
	}
}

func TestComputeDrainConservationViolation(t *testing.T) {
	// Flow appears on a dead-end edge: no walk to the sink exists, which
	// means the records are corrupt and the drain must say so.
	in := drainInput(4,
		graph.InputEdge{U: 0, V: 1, Cap: 1},
	)
	if _, err := computeDrain(in, map[graph.EdgeID]int64{0: 3}); err == nil {
		t.Fatal("expected a conservation error")
	}
}

func TestComputeDrainUnknownEdge(t *testing.T) {
	in := drainInput(3, graph.InputEdge{U: 0, V: 1, Cap: 1})
	if _, err := computeDrain(in, map[graph.EdgeID]int64{7: 1}); err == nil {
		t.Fatal("expected an unknown-edge error")
	}
}
