package dynamic_test

import (
	"fmt"
	"log"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/dynamic"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// A diamond network s -> {1,2} -> t is solved cold, then an update batch
// cuts one path's capacity below its committed flow. Apply repairs the
// records (here: one violating edge, one unit of flow drained) and
// warm-restarts FFMR from the repaired state instead of recomputing.
// Randomized batches for real graphs come from graphgen.GenerateUpdates.
func Example() {
	fs := dfs.New(dfs.Config{Nodes: 2, BlockSize: 16 << 10, Replication: 1})
	cluster := mapreduce.NewCluster(2, 4, fs)
	cluster.Cost = mapreduce.ZeroCostModel()

	in := &graph.Input{
		NumVertices: 4, Source: 0, Sink: 3,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 2}, {U: 1, V: 3, Cap: 2},
			{U: 0, V: 2, Cap: 2}, {U: 2, V: 3, Cap: 2},
		},
	}
	snap, err := dynamic.Solve(cluster, in, core.Options{Variant: core.FF5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold flow:", snap.Result.MaxFlow)

	// Edge 1 (the 1 -> t hop) drops to capacity 1, stranding one of the
	// two units it carries.
	batch := []graph.Update{graph.SetCapacity(1, 1, false)}
	out, err := dynamic.Apply(cluster, snap, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violations:", out.Violations)
	fmt.Println("cancelled:", out.CancelledFlow)
	fmt.Println("warm flow:", out.Warm.MaxFlow)
	// Output:
	// cold flow: 4
	// violations: 1
	// cancelled: 1
	// warm flow: 3
}
