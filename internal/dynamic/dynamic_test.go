package dynamic

import (
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
)

func testCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

// oracle computes the ground-truth max flow of an input graph.
func oracle(t *testing.T, in *graph.Input) int64 {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("FromInput: %v", err)
	}
	return maxflow.Dinic(net, int(in.Source), int(in.Sink))
}

func pathGraph(hops int, cap int64) *graph.Input {
	in := &graph.Input{NumVertices: hops + 1, Source: 0, Sink: graph.VertexID(hops)}
	for i := 0; i < hops; i++ {
		in.Edges = append(in.Edges, graph.InputEdge{
			U: graph.VertexID(i), V: graph.VertexID(i + 1), Cap: cap,
		})
	}
	return in
}

// solveSnap runs the cold base solve and sanity-checks it against the
// oracle.
func solveSnap(t *testing.T, cluster *mapreduce.Cluster, in *graph.Input, opts core.Options) *Snapshot {
	t.Helper()
	snap, err := Solve(cluster, in, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if want := oracle(t, in); snap.Result.MaxFlow != want {
		t.Fatalf("cold flow = %d, oracle says %d", snap.Result.MaxFlow, want)
	}
	return snap
}

// applyChecked applies a batch and asserts the warm flow matches the
// oracle on the updated graph.
func applyChecked(t *testing.T, cluster *mapreduce.Cluster, snap *Snapshot, batch []graph.Update) *Outcome {
	t.Helper()
	out, err := Apply(cluster, snap, batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if want := oracle(t, out.Snapshot.Input); out.Warm.MaxFlow != want {
		t.Fatalf("warm flow = %d, oracle says %d on the updated graph", out.Warm.MaxFlow, want)
	}
	if !out.Warm.Converged {
		t.Fatal("warm run did not converge")
	}
	return out
}

func TestApplyCapacityDecrease(t *testing.T) {
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, pathGraph(3, 5), core.Options{})

	out := applyChecked(t, cluster, snap, []graph.Update{graph.SetCapacity(1, 2, false)})
	if out.Warm.MaxFlow != 2 {
		t.Errorf("flow after decrease = %d, want 2", out.Warm.MaxFlow)
	}
	if out.Violations != 1 {
		t.Errorf("violations = %d, want 1", out.Violations)
	}
	if out.CancelledFlow != 3 {
		t.Errorf("cancelled flow = %d, want 3", out.CancelledFlow)
	}
	if !out.DrainRan {
		t.Error("drain job should have run")
	}
	if out.Snapshot.Gen != 1 {
		t.Errorf("gen = %d, want 1", out.Snapshot.Gen)
	}
}

func TestApplyCapacityIncreaseReaugments(t *testing.T) {
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, pathGraph(3, 5), core.Options{})

	// Shrink the middle edge, then widen it past its original capacity:
	// the second warm run must re-augment along the repaired residual
	// graph back to the other edges' bottleneck.
	out1 := applyChecked(t, cluster, snap, []graph.Update{graph.SetCapacity(1, 2, false)})
	out2 := applyChecked(t, cluster, out1.Snapshot, []graph.Update{graph.SetCapacity(1, 9, false)})
	if out2.Warm.MaxFlow != 5 {
		t.Errorf("flow after increase = %d, want 5", out2.Warm.MaxFlow)
	}
	if out2.Violations != 0 {
		t.Errorf("violations = %d, want 0 (residual-monotone batch)", out2.Violations)
	}
	if out2.CancelledFlow != 0 || out2.DrainRan {
		t.Errorf("residual-monotone batch must skip the drain; cancelled=%d ran=%v",
			out2.CancelledFlow, out2.DrainRan)
	}
	if out2.Snapshot.Gen != 2 {
		t.Errorf("gen = %d, want 2", out2.Snapshot.Gen)
	}
}

func TestApplyInsertAddsCapacity(t *testing.T) {
	cluster := testCluster(2)
	in := pathGraph(2, 5)
	in.Edges[1].Cap = 2 // bottleneck 1 -> 2
	snap := solveSnap(t, cluster, in, core.Options{})
	if snap.Result.MaxFlow != 2 {
		t.Fatalf("cold flow = %d, want 2", snap.Result.MaxFlow)
	}

	out := applyChecked(t, cluster, snap, []graph.Update{graph.InsertEdge(1, 2, 4, false)})
	if out.Warm.MaxFlow != 5 {
		t.Errorf("flow after insert = %d, want 5", out.Warm.MaxFlow)
	}
	if out.DrainRan || out.Violations != 0 {
		t.Errorf("insert is residual-monotone; drain ran=%v violations=%d", out.DrainRan, out.Violations)
	}
}

func TestApplyDeleteDisconnects(t *testing.T) {
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, pathGraph(3, 4), core.Options{})

	out := applyChecked(t, cluster, snap, []graph.Update{graph.DeleteEdge(1)})
	if out.Warm.MaxFlow != 0 {
		t.Errorf("flow after disconnecting delete = %d, want 0", out.Warm.MaxFlow)
	}
	if out.CancelledFlow != 4 {
		t.Errorf("cancelled flow = %d, want 4", out.CancelledFlow)
	}
}

func TestApplyMixedBatch(t *testing.T) {
	// Diamond: s -> 1 -> t and s -> 2 -> t, then one batch that deletes
	// a branch, shrinks another edge and inserts a bypass.
	in := &graph.Input{
		NumVertices: 4, Source: 0, Sink: 3,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 3}, // e0
			{U: 1, V: 3, Cap: 3}, // e1
			{U: 0, V: 2, Cap: 2}, // e2
			{U: 2, V: 3, Cap: 2}, // e3
		},
	}
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, in, core.Options{})
	if snap.Result.MaxFlow != 5 {
		t.Fatalf("cold flow = %d, want 5", snap.Result.MaxFlow)
	}

	out := applyChecked(t, cluster, snap, []graph.Update{
		graph.DeleteEdge(3),               // kills the s->2->t branch
		graph.SetCapacity(1, 2, false),    // shrinks 1->t
		graph.InsertEdge(1, 2, 10, false), // useless bypass into the dead branch
	})
	// Only s->1->t survives with bottleneck 2.
	if out.Warm.MaxFlow != 2 {
		t.Errorf("flow = %d, want 2", out.Warm.MaxFlow)
	}
	if out.Violations != 2 {
		t.Errorf("violations = %d, want 2 (deleted branch + shrunk edge)", out.Violations)
	}

	// Generation 2 restores the deleted branch via the bypass inserted
	// above: s -> 1 -> 2 -> t.
	out2 := applyChecked(t, cluster, out.Snapshot, []graph.Update{
		graph.SetCapacity(3, 2, false), // resurrect 2->t
	})
	// Both edges into t carry 2 again and both are reachable.
	if out2.Warm.MaxFlow != 4 {
		t.Errorf("flow = %d, want 4", out2.Warm.MaxFlow)
	}
}

func TestApplyRejectsInsertAtIsolatedVertex(t *testing.T) {
	in := pathGraph(2, 3)
	in.NumVertices = 4 // vertex 3 exists but has no edges, hence no record
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, in, core.Options{})

	if _, err := Apply(cluster, snap, []graph.Update{graph.InsertEdge(1, 3, 5, false)}); err == nil {
		t.Fatal("insert at an isolated vertex must be rejected")
	}
}

func TestApplyEmptyBatch(t *testing.T) {
	cluster := testCluster(2)
	snap := solveSnap(t, cluster, pathGraph(3, 5), core.Options{})
	out := applyChecked(t, cluster, snap, nil)
	if out.Warm.MaxFlow != snap.Result.MaxFlow {
		t.Errorf("empty batch changed the flow: %d -> %d", snap.Result.MaxFlow, out.Warm.MaxFlow)
	}
	if out.DrainRan || out.Violations != 0 {
		t.Errorf("empty batch must be a no-op repair; ran=%v violations=%d", out.DrainRan, out.Violations)
	}
}

func TestApplyAllVariants(t *testing.T) {
	for _, v := range []core.Variant{core.FF1, core.FF2, core.FF3, core.FF4, core.FF5} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cluster := testCluster(2)
			in := pathGraph(2, 5)
			in.Edges[1].Cap = 2
			snap := solveSnap(t, cluster, in, core.Options{Variant: v, DeterministicAccept: true})
			out := applyChecked(t, cluster, snap, []graph.Update{
				graph.InsertEdge(1, 2, 4, false),
				graph.SetCapacity(0, 4, false),
			})
			if out.Warm.MaxFlow != 4 {
				t.Errorf("%s: flow = %d, want 4", v, out.Warm.MaxFlow)
			}
		})
	}
}

func TestRunWarmValidation(t *testing.T) {
	cluster := testCluster(2)
	in := pathGraph(2, 1)
	if _, err := core.RunWarm(cluster, in, core.Options{}, core.WarmStart{}); err == nil {
		t.Error("empty StatePrefix must be rejected")
	}
	if _, err := core.RunWarm(cluster, in, core.Options{Resume: true},
		core.WarmStart{StatePrefix: "x/"}); err == nil {
		t.Error("Resume + warm start must be rejected")
	}
}
