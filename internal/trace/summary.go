package trace

import "time"

// RoundSummary is the per-round view of a traced run: exactly the
// columns of the paper's Table I plus the auxiliary counters the driver
// records on each round span. The stats tables and the experiment
// harness derive their numbers from these summaries, so a rendered
// Table I and an exported trace file always agree — they are the same
// instrumentation.
type RoundSummary struct {
	Round          int
	APaths         int64
	Submitted      int64
	MaxQueue       int64
	FlowDelta      int64
	SourceMove     int64
	SinkMove       int64
	ActiveVertices int64
	MapOutRecords  int64
	MapOutBytes    int64
	ShuffleBytes   int64
	MaxRecordBytes int64
	MaxGroupBytes  int64
	OutputBytes    int64
	SimTime        time.Duration
	WallTime       time.Duration
}

func summaryFromSnapshot(sn snapshot) RoundSummary {
	get := func(key string) int64 {
		for i := range sn.attrs {
			if sn.attrs[i].Key == key && !sn.attrs[i].IsStr {
				return sn.attrs[i].Int
			}
		}
		return 0
	}
	return RoundSummary{
		Round:          int(get(AttrRound)),
		APaths:         get(AttrAPaths),
		Submitted:      get(AttrSubmitted),
		MaxQueue:       get(AttrMaxQueue),
		FlowDelta:      get(AttrFlowDelta),
		SourceMove:     get(AttrSourceMove),
		SinkMove:       get(AttrSinkMove),
		ActiveVertices: get(AttrActiveVertices),
		MapOutRecords:  get(AttrMapOutRecords),
		MapOutBytes:    get(AttrMapOutBytes),
		ShuffleBytes:   get(AttrShuffleBytes),
		MaxRecordBytes: get(AttrMaxRecordBytes),
		MaxGroupBytes:  get(AttrMaxGroupBytes),
		OutputBytes:    get(AttrOutputBytes),
		SimTime:        time.Duration(get(AttrSimTimeUS)) * time.Microsecond,
		WallTime:       time.Duration(sn.durUS) * time.Microsecond,
	}
}

// RoundSummariesUnder extracts the per-round summaries recorded beneath
// one run span, in round order. Returns nil for a nil run span (the
// untraced case).
func RoundSummariesUnder(run *Span) []RoundSummary {
	if run == nil {
		return nil
	}
	var out []RoundSummary
	for _, sn := range run.t.childrenOf(run, CatRound) {
		out = append(out, summaryFromSnapshot(sn))
	}
	return out
}

// RoundSummaries extracts every round span recorded by the tracer
// regardless of parent run, in start order — convenient for CLIs that
// trace a single run.
func (t *Tracer) RoundSummaries() []RoundSummary {
	if t == nil {
		return nil
	}
	var out []RoundSummary
	for _, sn := range t.snapshots() {
		if sn.cat == CatRound {
			out = append(out, summaryFromSnapshot(sn))
		}
	}
	return out
}
