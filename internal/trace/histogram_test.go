package trace

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	v := h.Value()
	if v.Count != 8 {
		t.Fatalf("count = %d, want 8", v.Count)
	}
	var sum int64
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 1000, 1 << 40} {
		sum += v
	}
	if v.Sum != sum {
		t.Fatalf("sum = %d, want %d", v.Sum, sum)
	}
	// -5 and 0 land in bucket 0; 1 in bucket 1; 2,3 in bucket 2; 4 in
	// bucket 3; 1000 in bucket 10; 1<<40 in bucket 41.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1, 41: 1}
	for i, n := range v.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	var total int64
	for _, n := range v.Buckets {
		total += n
	}
	if total != v.Count {
		t.Fatalf("bucket total %d != count %d", total, v.Count)
	}
}

func TestBucketBoundCoversRange(t *testing.T) {
	if BucketBound(0) != 0 {
		t.Fatalf("BucketBound(0) = %d", BucketBound(0))
	}
	if BucketBound(histBuckets-1) != math.MaxInt64 {
		t.Fatalf("last bound = %d", BucketBound(histBuckets-1))
	}
	for i := 1; i < histBuckets-1; i++ {
		lo, hi := BucketBound(i-1), BucketBound(i)
		// Every v in (lo, hi] must land in bucket i.
		if bucketIndex(lo+1) != i || bucketIndex(hi) != i {
			t.Fatalf("bucket %d bounds (%d, %d] disagree with bucketIndex", i, lo, hi)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	v := h.Value()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := float64(v.Quantile(tc.q))
		// Log buckets bound the error by 2x.
		if got < tc.want/2 || got > tc.want*2 {
			t.Fatalf("Quantile(%v) = %v, want within 2x of %v", tc.q, got, tc.want)
		}
	}
	if (HistogramValue{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}

func TestHistogramSubAbsorb(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	h.Observe(100)
	prev := h.Value()
	h.Observe(1000)
	h.Observe(7)
	cur := h.Value()

	delta := cur.Sub(prev)
	if delta.Count != 2 || delta.Sum != 1007 {
		t.Fatalf("delta = %+v", delta)
	}
	merged := &Histogram{}
	merged.Absorb(prev)
	merged.Absorb(delta)
	got := merged.Value()
	if got.Count != cur.Count || got.Sum != cur.Sum {
		t.Fatalf("absorbed = %+v, want %+v", got, cur)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != cur.Buckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got.Buckets[i], cur.Buckets[i])
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Absorb(HistogramValue{Count: 1})
	if h.Value().Count != 0 {
		t.Fatal("nil histogram has observations")
	}
	var r *Registry
	r.Histogram("x").Observe(1)
	if len(r.HistogramSnapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("shared")
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	v := r.HistogramSnapshot()["shared"]
	if v.Count != 8000 {
		t.Fatalf("count = %d, want 8000", v.Count)
	}
}
