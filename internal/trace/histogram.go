package trace

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v with bucketIndex(v) == i: bucket 0 takes v <= 0
// and bucket i >= 1 takes v in [2^(i-1), 2^i - 1]. 64 buckets cover the
// whole non-negative int64 range, so nanosecond latencies from
// sub-microsecond to centuries land without per-histogram configuration,
// and every histogram in the system shares one bucket layout — which is
// what lets worker-shipped snapshots merge into master histograms by
// plain bucket-wise addition.
const histBuckets = 64

// Histogram is a fixed-log-bucket latency histogram. An observation is
// three uncontended atomic adds (count, sum, one bucket), cheap enough
// for RPC and task hot paths. All methods are safe for concurrent use
// and on nil receivers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns bucket i's inclusive upper bound (2^i - 1, with
// the last bucket unbounded). Prometheus rendering uses these as the
// cumulative `le` edges.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return 1<<uint(i) - 1
}

// Observe records one value (by convention, nanoseconds).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Absorb adds a snapshot's counts into the histogram: the merge
// primitive the master uses to fold a worker-shipped histogram delta
// into its own registry. Absorbing a Sub of two snapshots of the same
// monotone histogram is idempotent-safe under at-least-once delivery
// because the caller diffs against its last-applied snapshot.
func (h *Histogram) Absorb(v HistogramValue) {
	if h == nil || v.Count == 0 {
		return
	}
	h.count.Add(v.Count)
	h.sum.Add(v.Sum)
	for i, n := range v.Buckets {
		if n != 0 && i < histBuckets {
			h.buckets[i].Add(n)
		}
	}
}

// Value snapshots the histogram (zero value on nil). Concurrent
// observers may land between the count and bucket loads, so a snapshot
// is only guaranteed exact once the histogram is quiescent — the same
// contract as CounterSnapshot.
func (h *Histogram) Value() HistogramValue {
	if h == nil {
		return HistogramValue{}
	}
	v := HistogramValue{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]int64, histBuckets),
	}
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	return v
}

// HistogramValue is one histogram's exported state: total count, sum,
// and per-bucket counts (len histBuckets, indexed by bucketIndex).
type HistogramValue struct {
	Count   int64
	Sum     int64
	Buckets []int64
}

// Mean returns the mean observation (0 when empty).
func (v HistogramValue) Mean() int64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / v.Count
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the rank-q observation and interpolating linearly inside it.
// With power-of-two buckets the estimate is within 2x of the true value,
// which is all a p95/p99 dashboard needs.
func (v HistogramValue) Quantile(q float64) int64 {
	if v.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(v.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > v.Count {
		rank = v.Count
	}
	var cum int64
	for i, n := range v.Buckets {
		if n <= 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo := BucketBound(i - 1)
		hi := BucketBound(i)
		if hi == math.MaxInt64 {
			return lo // unbounded tail: report its lower edge
		}
		frac := float64(rank-(cum-n)) / float64(n)
		return lo + int64(frac*float64(hi-lo))
	}
	return BucketBound(histBuckets - 1)
}

// Sub returns the bucket-wise difference v - prev. With v and prev two
// snapshots of the same (monotone) histogram, the result is the
// observations recorded between them and every field is non-negative;
// the master uses it to turn a worker's absolute shipped snapshot into
// the delta to Absorb.
func (v HistogramValue) Sub(prev HistogramValue) HistogramValue {
	out := HistogramValue{
		Count:   v.Count - prev.Count,
		Sum:     v.Sum - prev.Sum,
		Buckets: make([]int64, histBuckets),
	}
	for i := range out.Buckets {
		var a, b int64
		if i < len(v.Buckets) {
			a = v.Buckets[i]
		}
		if i < len(prev.Buckets) {
			b = prev.Buckets[i]
		}
		out.Buckets[i] = a - b
	}
	return out
}
