package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(CatRun, "nothing", nil)
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.SetInt("x", 1)
	sp.SetStr("y", "z")
	sp.SetTID(3)
	sp.End()
	if _, ok := sp.Int("x"); ok {
		t.Fatal("nil span returned an attr")
	}
	if sp.Duration() != 0 || sp.Name() != "" || sp.Cat() != "" {
		t.Fatal("nil span has state")
	}
	reg := tr.Registry()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(5)
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Max() != 0 {
		t.Fatal("nil registry recorded values")
	}
	if tr.RoundSummaries() != nil || RoundSummariesUnder(nil) != nil {
		t.Fatal("nil tracer produced summaries")
	}
}

func TestSpanHierarchyAndAttrs(t *testing.T) {
	tr := New()
	run := tr.Start(CatRun, "run", nil)
	round := tr.Start(CatRound, "round-1", run)
	round.SetInt(AttrRound, 1)
	round.SetInt(AttrAPaths, 7)
	round.SetInt(AttrAPaths, 9) // overwrite
	round.SetStr("variant", "FF5")
	round.End()
	run.End()

	if v, ok := round.Int(AttrAPaths); !ok || v != 9 {
		t.Fatalf("a_paths = %d, %v", v, ok)
	}
	sums := RoundSummariesUnder(run)
	if len(sums) != 1 || sums[0].Round != 1 || sums[0].APaths != 9 {
		t.Fatalf("summaries = %+v", sums)
	}
	// A round under a different run must not leak into this run's view.
	other := tr.Start(CatRun, "run2", nil)
	r2 := tr.Start(CatRound, "round-1", other)
	r2.SetInt(AttrRound, 1)
	r2.End()
	other.End()
	if got := len(RoundSummariesUnder(run)); got != 1 {
		t.Fatalf("run 1 sees %d rounds", got)
	}
	if got := len(tr.RoundSummaries()); got != 2 {
		t.Fatalf("tracer-wide summaries = %d, want 2", got)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("hits").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	g := reg.Gauge("depth")
	g.Set(3)
	g.Set(10)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 10 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
	g.Reset()
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("reset did not clear gauge")
	}
	if reg.Counter("hits") != reg.Counter("hits") {
		t.Fatal("counter handles not interned")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New()
	run := tr.Start(CatRun, "run", nil)
	round := tr.Start(CatRound, "round-1", run)
	round.SetInt(AttrRound, 1)
	round.SetInt(AttrShuffleBytes, 4096)
	round.SetStr("variant", "FF3")
	time.Sleep(time.Millisecond)
	round.End()
	run.End()
	tr.Registry().Counter("source move").Add(12)
	tr.Registry().Gauge("augproc queue depth").Set(5)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var foundRound, foundCounter, foundGauge bool
	for _, e := range events {
		switch {
		case e.Cat == CatRound && e.Name == "round-1":
			foundRound = true
			if v, ok := e.Int(AttrShuffleBytes); !ok || v != 4096 {
				t.Fatalf("shuffle arg = %d, %v", v, ok)
			}
			if e.Args["variant"] != "FF3" {
				t.Fatalf("variant arg = %v", e.Args["variant"])
			}
			if e.Dur <= 0 {
				t.Fatal("round span has no duration")
			}
		case e.Cat == "counter" && e.Name == "source move":
			foundCounter = true
			if v, _ := e.Int("value"); v != 12 {
				t.Fatalf("counter value = %d", v)
			}
		case e.Cat == "gauge" && e.Name == "augproc queue depth":
			foundGauge = true
			if v, _ := e.Int("max"); v != 5 {
				t.Fatalf("gauge max = %d", v)
			}
		}
	}
	if !foundRound || !foundCounter || !foundGauge {
		t.Fatalf("missing events: round=%v counter=%v gauge=%v", foundRound, foundCounter, foundGauge)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	sp := tr.Start(CatJob, "job-x", nil)
	sp.SetInt("map_tasks", 3)
	sp.End()
	tr.Registry().Counter("task failures").Add(2)

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"id,parent,cat,name", "job,job-x", "map_tasks=3", "counter,task failures", "value=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentSpanUse(t *testing.T) {
	tr := New()
	run := tr.Start(CatRun, "run", nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Start(CatTask, "task", run)
			sp.SetInt("task", int64(i))
			sp.SetTID(int64(i%4) + 2)
			sp.End()
		}(i)
	}
	wg.Wait()
	run.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	tasks := 0
	for _, e := range events {
		if e.Cat == CatTask {
			tasks++
		}
	}
	if tasks != 16 {
		t.Fatalf("exported %d task spans, want 16", tasks)
	}
}

// TestRegistryConcurrentUse hammers one Registry from writer goroutines
// (lazily creating counters and gauges, the driver side) while reader
// goroutines snapshot it (the admin /metrics scraper side). Run under
// -race this proves live scraping never needs to pause the cluster.
func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	const writers, readers, rounds = 8, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"shared hits", "per-writer hits " + string(rune('a'+w))}
			for i := 0; i < rounds; i++ {
				for _, n := range names {
					reg.Counter(n).Add(1)
				}
				g := reg.Gauge("depth " + string(rune('a'+w)))
				g.Set(int64(i))
				if i%50 == 0 {
					g.Reset()
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cs := reg.CounterSnapshot()
				if v := cs["shared hits"]; v > writers*rounds {
					t.Errorf("snapshot over-counts: shared hits = %d", v)
					return
				}
				for _, gv := range reg.GaugeSnapshot() {
					if gv.Last < 0 || gv.Max < 0 {
						t.Errorf("impossible gauge snapshot: %+v", gv)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.CounterSnapshot()["shared hits"]; got != writers*rounds {
		t.Fatalf("shared hits = %d, want %d", got, writers*rounds)
	}
}
