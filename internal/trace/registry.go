package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed counter/gauge registry. It subsumes the
// Hadoop-style named counters the MapReduce engine exposes to tasks and
// hosts run-scoped gauges such as the aug_proc queue depth. Handles are
// interned: repeated lookups of the same name return the same object,
// so hot paths can cache them. All methods are safe for concurrent use
// and on nil receivers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically accumulating int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter (no-op on nil).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the counter's current value (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time int64 metric that additionally remembers the
// maximum value it was ever set to (the paper's MaxQ is the high-water
// mark of the aug_proc queue-depth gauge).
type Gauge struct {
	mu        sync.Mutex
	last, max int64
}

// Set records the gauge's current value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.last = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Value returns the most recently set value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Max returns the largest value ever set (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Reset clears the gauge's value and high-water mark (used at round
// boundaries).
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.last, g.max = 0, 0
	g.mu.Unlock()
}

// Counter interns and returns the named counter (nil on a nil registry;
// the nil Counter's methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram (nil on a nil
// registry; the nil Histogram's methods are no-ops).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot copies every histogram into a plain map.
func (r *Registry) HistogramSnapshot() map[string]HistogramValue {
	if r == nil {
		return map[string]HistogramValue{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramValue, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Value()
	}
	return out
}

// CounterSnapshot copies every counter into a plain map.
func (r *Registry) CounterSnapshot() map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeValue is one gauge's exported state.
type GaugeValue struct {
	Last, Max int64
}

// GaugeSnapshot copies every gauge into a plain map.
func (r *Registry) GaugeSnapshot() map[string]GaugeValue {
	if r == nil {
		return map[string]GaugeValue{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]GaugeValue, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = GaugeValue{Last: g.Value(), Max: g.Max()}
	}
	return out
}

// sortedKeys returns a map's keys in lexical order, for deterministic
// export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
