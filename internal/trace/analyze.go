package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file is the offline half of the observability story: given an
// exported Chrome trace (now containing both master spans and
// worker-shipped spans stitched under them), Analyze rebuilds the span
// DAG, walks the critical path of every round, attributes each round's
// wall time to map/reduce/shuffle/rpc/idle buckets, and scores
// stragglers. `ffmr -analyze <trace>` renders the result.

// Bucket names used by the round attribution.
const (
	BucketMap     = "map"
	BucketReduce  = "reduce"
	BucketShuffle = "shuffle"
	BucketRPC     = "rpc"
	BucketOther   = "other"
	BucketIdle    = "idle"
)

// aspan is one span rebuilt from a parsed trace export.
type aspan struct {
	id, parent int64
	name, cat  string
	start, end int64 // µs, trace timebase
	dur        int64
	worker     bool // recorded worker-side (shipped): has a "worker" arg
	args       map[string]any
	children   []*aspan
}

// PathStep is one hop of a round's critical path.
type PathStep struct {
	Cat, Name string
	DurUS     int64
	Worker    bool
}

// Straggler is one slow task attempt flagged by the per-round z-score
// scan.
type Straggler struct {
	Phase  string // map | reduce
	Name   string
	DurUS  int64
	MeanUS int64
	Z      float64
}

// RoundReport is the analysis of one round span.
type RoundReport struct {
	Round        int64
	Name         string
	WallUS       int64
	CriticalUS   int64
	CriticalPath []PathStep
	// BucketUS attributes the round's wall time: overlapping spans are
	// resolved by priority (reduce > map > shuffle > rpc > other) and
	// uncovered time is idle.
	BucketUS   map[string]int64
	Stragglers []Straggler
	TaskSpans  int
}

// Report is the whole trace's analysis.
type Report struct {
	Spans       int
	WorkerSpans int
	Rounds      []RoundReport
	// BucketUS sums the per-round attributions.
	BucketUS map[string]int64
}

// Analyze rebuilds the span DAG from a parsed trace export and produces
// the per-round critical-path, attribution and straggler report. It
// needs the span ids exported in the "span" arg, so traces written by
// older builds analyze as empty.
func Analyze(events []ParsedEvent) (*Report, error) {
	byID := make(map[int64]*aspan)
	var spans []*aspan
	for i := range events {
		e := &events[i]
		id, ok := e.Int("span")
		if !ok {
			continue // counter/gauge rows, or a pre-span-id trace
		}
		s := &aspan{
			id: id, name: e.Name, cat: e.Cat,
			start: e.Ts, end: e.Ts + e.Dur, dur: e.Dur,
			args: e.Args,
		}
		s.parent, _ = e.Int("parent_span")
		_, s.worker = e.Int("worker")
		byID[s.id] = s
		spans = append(spans, s)
	}
	rep := &Report{Spans: len(spans), BucketUS: map[string]int64{}}
	for _, s := range spans {
		if s.worker {
			rep.WorkerSpans++
		}
		if p := byID[s.parent]; p != nil && p != s {
			p.children = append(p.children, s)
		}
	}
	for _, s := range spans {
		sort.Slice(s.children, func(i, j int) bool { return s.children[i].start < s.children[j].start })
	}
	for _, s := range spans {
		if s.cat != CatRound {
			continue
		}
		rr := analyzeRound(s)
		rep.Rounds = append(rep.Rounds, rr)
		for k, v := range rr.BucketUS {
			rep.BucketUS[k] += v
		}
	}
	sort.Slice(rep.Rounds, func(i, j int) bool { return rep.Rounds[i].Round < rep.Rounds[j].Round })
	return rep, nil
}

func analyzeRound(round *aspan) RoundReport {
	rr := RoundReport{
		Name:     round.name,
		WallUS:   round.dur,
		BucketUS: map[string]int64{},
	}
	if v, ok := intArg(round.args, AttrRound); ok {
		rr.Round = v
	}

	// Critical path: from the round down, repeatedly step into the child
	// that finishes last — the span the parent was waiting on when it
	// ended. The path's length is the round's wall time; the steps show
	// which spans carried it.
	for s := round; ; {
		rr.CriticalPath = append(rr.CriticalPath, PathStep{Cat: s.cat, Name: s.name, DurUS: s.dur, Worker: s.worker})
		var next *aspan
		for _, c := range s.children {
			if next == nil || c.end > next.end {
				next = c
			}
		}
		if next == nil {
			break
		}
		s = next
	}
	rr.CriticalUS = round.dur

	// Attribution: classify every descendant span, then sweep the round
	// interval assigning each instant to the highest-priority bucket
	// covering it; uncovered time is idle.
	type interval struct {
		start, end int64
		prio       int
		bucket     string
	}
	var ivs []interval
	var mapDur, redDur []*aspan
	var walk func(s *aspan)
	walk = func(s *aspan) {
		for _, c := range s.children {
			if b, prio := classify(c); b != "" {
				st, en := clamp(c.start, round.start, round.end), clamp(c.end, round.start, round.end)
				if en > st {
					ivs = append(ivs, interval{st, en, prio, b})
				}
				if c.cat == CatTask {
					rr.TaskSpans++
					switch b {
					case BucketMap:
						mapDur = append(mapDur, c)
					case BucketReduce:
						redDur = append(redDur, c)
					}
				}
			}
			walk(c)
		}
	}
	walk(round)

	// Sweep: collect the boundary points, then attribute each elementary
	// segment to the best-priority interval covering it.
	points := make([]int64, 0, 2*len(ivs)+2)
	points = append(points, round.start, round.end)
	for _, iv := range ivs {
		points = append(points, iv.start, iv.end)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	for i := 0; i+1 < len(points); i++ {
		a, b := points[i], points[i+1]
		if b <= a {
			continue
		}
		best := ""
		bestPrio := -1
		for _, iv := range ivs {
			if iv.start <= a && iv.end >= b && iv.prio > bestPrio {
				best, bestPrio = iv.bucket, iv.prio
			}
		}
		if best == "" {
			best = BucketIdle
		}
		rr.BucketUS[best] += b - a
	}

	rr.Stragglers = append(rr.Stragglers, stragglers("map", mapDur)...)
	rr.Stragglers = append(rr.Stragglers, stragglers("reduce", redDur)...)
	return rr
}

// classify maps a span to its attribution bucket and priority. Nested
// spans overlap (a spill inside a map task, a shuffle fetch inside a
// reduce), so the sweep keeps the most specific work: reduce beats map
// beats shuffle beats rpc.
func classify(s *aspan) (string, int) {
	switch s.cat {
	case CatTask, CatPhase:
		n := strings.ToLower(s.name)
		if ph, ok := s.args["phase"].(string); ok {
			n = ph
		}
		switch {
		case strings.Contains(n, "reduce"):
			return BucketReduce, 4
		case strings.Contains(n, "map"):
			return BucketMap, 3
		}
		return BucketOther, 0
	case CatShuffle:
		return BucketShuffle, 2
	case CatRPC:
		return BucketRPC, 1
	case CatSpill:
		return BucketMap, 3
	case CatMerge:
		return BucketReduce, 4
	}
	return "", 0
}

// stragglers scores each task's duration against its phase's mean and
// standard deviation, flagging attempts more than two standard
// deviations slow (and always reporting at most the five worst).
func stragglers(phase string, tasks []*aspan) []Straggler {
	if len(tasks) < 3 {
		return nil
	}
	var sum, sum2 float64
	for _, t := range tasks {
		d := float64(t.dur)
		sum += d
		sum2 += d * d
	}
	n := float64(len(tasks))
	mean := sum / n
	std := math.Sqrt(math.Max(0, sum2/n-mean*mean))
	if std == 0 {
		return nil
	}
	var out []Straggler
	for _, t := range tasks {
		z := (float64(t.dur) - mean) / std
		if z > 2 {
			out = append(out, Straggler{
				Phase: phase, Name: t.name, DurUS: t.dur, MeanUS: int64(mean), Z: z,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Z > out[j].Z })
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}

// Format renders the report as the ASCII table `ffmr -analyze` prints.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "trace analysis: %d spans (%d worker-side), %d rounds\n",
		r.Spans, r.WorkerSpans, len(r.Rounds))
	if len(r.Rounds) == 0 {
		fmt.Fprintln(w, "no round spans found (trace too old, or run had no rounds)")
		return
	}
	for i := range r.Rounds {
		rr := &r.Rounds[i]
		fmt.Fprintf(w, "\nround %d (%s): wall %s, critical path %s, %d task spans\n",
			rr.Round, rr.Name, usStr(rr.WallUS), usStr(rr.CriticalUS), rr.TaskSpans)
		steps := make([]string, 0, len(rr.CriticalPath))
		for _, st := range rr.CriticalPath {
			side := ""
			if st.Worker {
				side = "@worker"
			}
			steps = append(steps, fmt.Sprintf("%s:%s%s %s", st.Cat, st.Name, side, usStr(st.DurUS)))
		}
		fmt.Fprintf(w, "  path: %s\n", strings.Join(steps, " -> "))
		fmt.Fprintf(w, "  attribution:")
		for _, b := range []string{BucketMap, BucketShuffle, BucketReduce, BucketRPC, BucketOther, BucketIdle} {
			v := rr.BucketUS[b]
			if v == 0 && b != BucketIdle {
				continue
			}
			pct := 0.0
			if rr.WallUS > 0 {
				pct = 100 * float64(v) / float64(rr.WallUS)
			}
			fmt.Fprintf(w, " %s %.1f%% (%s)", b, pct, usStr(v))
		}
		fmt.Fprintln(w)
		for _, s := range rr.Stragglers {
			fmt.Fprintf(w, "  straggler: %s %s z=%.1f (%s vs mean %s)\n",
				s.Phase, s.Name, s.Z, usStr(s.DurUS), usStr(s.MeanUS))
		}
	}
	// The idle fraction here is the exact offline counterpart of the
	// /status scaling hint: time inside rounds no categorized span
	// covers.
	var total, idle int64
	for i := range r.Rounds {
		total += r.Rounds[i].WallUS
		idle += r.Rounds[i].BucketUS[BucketIdle]
	}
	if total > 0 {
		fmt.Fprintf(w, "\noverall: %s in rounds, idle fraction %.1f%%\n",
			usStr(total), 100*float64(idle)/float64(total))
	}
}

func usStr(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func intArg(args map[string]any, key string) (int64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
