package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDrainCompleteSubtreesOnly(t *testing.T) {
	tr := New()
	a := tr.Start(CatTask, "map 0", nil)
	spill := tr.Start(CatSpill, "spill", a)
	spill.End()
	b := tr.Start(CatTask, "map 1", nil)
	b.End()

	got := tr.Drain()
	// Only b is drainable: spill has ended but its parent a has not.
	if len(got) != 1 || got[0].Name != "map 1" {
		t.Fatalf("drain = %+v, want just map 1", got)
	}
	a.End()
	got = tr.Drain()
	if len(got) != 2 {
		t.Fatalf("second drain = %d spans, want 2", len(got))
	}
	// Parents come before children (id order).
	if got[0].Name != "map 0" || got[1].Name != "spill" {
		t.Fatalf("drain order = %q, %q", got[0].Name, got[1].Name)
	}
	if got[1].Parent != got[0].ID {
		t.Fatalf("spill parent = %d, want %d", got[1].Parent, got[0].ID)
	}
	if len(tr.Drain()) != 0 {
		t.Fatal("third drain not empty")
	}
}

func TestDrainCarriesRemoteAndAttrs(t *testing.T) {
	tr := New()
	s := tr.Start(CatTask, "reduce 3", nil)
	s.SetRemote(Context{Run: 7, Job: 9, Round: 2, Span: 41})
	s.SetInt("task", 3)
	s.SetStr("kind", "ffmr")
	s.End()
	got := tr.Drain()
	if len(got) != 1 {
		t.Fatalf("drained %d spans", len(got))
	}
	sp := got[0]
	if sp.Remote != (Context{Run: 7, Job: 9, Round: 2, Span: 41}) {
		t.Fatalf("remote = %+v", sp.Remote)
	}
	if len(sp.Attrs) != 2 || sp.Attrs[0].Key != "task" || sp.Attrs[1].Str != "ffmr" {
		t.Fatalf("attrs = %+v", sp.Attrs)
	}
	if sp.Dur <= 0 && sp.Dur != 0 {
		t.Fatalf("dur = %v", sp.Dur)
	}
}

func TestImportStitchesUnderParent(t *testing.T) {
	master := New()
	job := master.Start(CatJob, "job", nil)

	// A worker records a task with a child shuffle span, drains, and the
	// master imports the batch in order, remapping local ids.
	worker := New()
	task := worker.Start(CatTask, "reduce 0", nil)
	task.SetRemote(Context{Job: 1, Span: job.ID()})
	sh := worker.Start(CatShuffle, "shuffle", task)
	sh.End()
	task.End()
	batch := worker.Drain()

	remap := map[int64]int64{}
	for i := range batch {
		sp := &batch[i]
		parent := sp.Remote.Span
		if sp.Parent != 0 {
			parent = remap[sp.Parent]
		}
		remap[sp.ID] = master.Import(&ImportedSpan{
			Parent: parent, Name: sp.Name, Cat: sp.Cat, TID: sp.TID,
			Start: sp.Start, Dur: sp.Dur, Attrs: sp.Attrs,
		})
	}
	job.End()

	var buf bytes.Buffer
	if err := master.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ParsedEvent{}
	for i := range events {
		e := &events[i]
		byName[e.Cat+"/"+e.Name] = e
	}
	jobID, _ := byName["job/job"].Int("span")
	taskParent, _ := byName["task/reduce 0"].Int("parent_span")
	if taskParent != jobID {
		t.Fatalf("task parent %d, want job span %d", taskParent, jobID)
	}
	taskID, _ := byName["task/reduce 0"].Int("span")
	shParent, _ := byName["shuffle/shuffle"].Int("parent_span")
	if shParent != taskID {
		t.Fatalf("shuffle parent %d, want task span %d", shParent, taskID)
	}
}

func TestImportNilSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Import(&ImportedSpan{Name: "x"}); id != 0 {
		t.Fatalf("nil import id = %d", id)
	}
	if tr.Drain() != nil {
		t.Fatal("nil drain not nil")
	}
	var s *Span
	if s.ID() != 0 {
		t.Fatal("nil span id != 0")
	}
	s.SetRemote(Context{})
}

func TestAnalyzeRoundTrip(t *testing.T) {
	// Build the whole tree via Import with controlled timestamps, the
	// way a master's tracer looks after a distributed run: master spans
	// (run/round/job) plus worker-shipped task spans stitched under the
	// job, one map straggling hard.
	tr := New()
	base := time.Now()
	mk := func(parent int64, cat, name string, start, durUS int64, attrs ...Attr) int64 {
		return tr.Import(&ImportedSpan{
			Parent: parent, Cat: cat, Name: name,
			Start: base.Add(time.Duration(start) * time.Microsecond),
			Dur:   time.Duration(durUS) * time.Microsecond,
			Attrs: attrs,
		})
	}
	worker := Attr{Key: "worker", Int: 1}
	run := mk(0, CatRun, "run", 0, 4000)
	round := mk(run, CatRound, "round 0", 0, 4000, Attr{Key: AttrRound, Int: 0})
	job := mk(round, CatJob, "job", 0, 3600)
	mk(job, CatTask, "map 0", 0, 1000, worker)
	mk(job, CatTask, "map 1", 0, 1100, worker)
	mk(job, CatTask, "map 2", 0, 900, worker)
	red := mk(job, CatTask, "reduce 0", 1200, 2000, worker)
	mk(red, CatShuffle, "shuffle", 1200, 400, worker)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkerSpans != 5 {
		t.Fatalf("worker spans = %d, want 5", rep.WorkerSpans)
	}
	if len(rep.Rounds) != 1 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	rr := rep.Rounds[0]
	if rr.CriticalUS <= 0 {
		t.Fatalf("critical path = %d", rr.CriticalUS)
	}
	if rr.TaskSpans != 4 {
		t.Fatalf("task spans = %d, want 4", rr.TaskSpans)
	}
	if rr.BucketUS[BucketMap] == 0 || rr.BucketUS[BucketReduce] == 0 {
		t.Fatalf("attribution missing map/reduce: %+v", rr.BucketUS)
	}
	// The reduce overlaps its shuffle child and wins by priority, so the
	// shuffle bucket stays empty here; total attribution covers wall.
	var total int64
	for _, v := range rr.BucketUS {
		total += v
	}
	if total != rr.WallUS {
		t.Fatalf("attribution total %d != wall %d", total, rr.WallUS)
	}

	var out strings.Builder
	rep.Format(&out)
	for _, want := range []string{"critical path", "worker-side", "attribution"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}
