// Package trace is the unified tracing and metrics subsystem of the FFMR
// repo. Every observability claim the paper makes — rounds, A-Paths,
// MaxQ, map-output records, shuffle bytes per round (Table I, Figs 5-8)
// — is recorded here as first-class instrumentation instead of ad-hoc
// counters scattered through the engines.
//
// The model is a hierarchy of spans (run -> round -> job -> phase ->
// task-attempt) carrying wall-time plus integer/string annotations, and
// a typed counter/gauge registry for point metrics (the Hadoop-style
// named counters, the aug_proc queue-depth gauge). Exporters render a
// recorded trace as a Chrome trace_event-compatible JSON file, as CSV
// series, and as per-round summary rows that the stats tables consume.
//
// The package depends only on the standard library, and every API is
// safe on nil receivers: a nil *Tracer produces nil *Spans and nil
// registry handles whose methods are all no-ops, so instrumented code
// needs no "is tracing on?" conditionals and pays near-zero cost when
// tracing is disabled.
package trace

import (
	"sync"
	"time"
)

// Span categories used across the system. Consumers (summary extraction,
// the stats tables) key on these, so producers must use the constants.
const (
	CatRun   = "run"   // one full multi-round computation
	CatRound = "round" // one MR round or BSP superstep
	CatJob   = "job"   // one MapReduce job
	CatPhase = "phase" // map / shuffle+reduce phase of a job
	CatTask  = "task"  // one task attempt
	CatSpill = "spill" // one map-side spill (sort + write of a buffer)
	CatMerge = "merge" // one reduce-side intermediate merge pass

	// CatShuffle spans a reduce task's shuffle-fetch window on a worker;
	// CatRPC spans one RPC round-trip on the caller's side. Both feed
	// the analyzer's shuffle/rpc attribution buckets.
	CatShuffle = "shuffle"
	CatRPC     = "rpc"

	// CatRepair spans the dynamic-update repair phase between two runs:
	// one span per update batch, parenting the apply and drain job spans
	// and annotated with batch size, violation count and cancelled flow.
	CatRepair = "repair"
)

// Round-span attribute keys. The driver annotates each round span with
// the paper's Table I columns under these names; RoundSummariesUnder
// reads them back.
const (
	AttrRound          = "round"
	AttrAPaths         = "a_paths"
	AttrSubmitted      = "submitted"
	AttrMaxQueue       = "max_q"
	AttrFlowDelta      = "flow_delta"
	AttrSourceMove     = "source_move"
	AttrSinkMove       = "sink_move"
	AttrActiveVertices = "active_vertices"
	AttrMapOutRecords  = "map_out_records"
	AttrMapOutBytes    = "map_out_bytes"
	AttrShuffleBytes   = "shuffle_bytes"
	AttrMaxRecordBytes = "max_record_bytes"
	AttrMaxGroupBytes  = "max_group_bytes"
	AttrOutputBytes    = "output_bytes"
	AttrSimTimeUS      = "sim_time_us"
)

// Dynamic-update (warm restart) attribute keys. RunWarm marks its run
// span with AttrWarm=1 so exports distinguish warm rounds — whose
// counters are not comparable to a cold run's — and the repair span
// carries the batch's shape under the remaining keys.
const (
	AttrWarm          = "warm"
	AttrUpdates       = "updates"
	AttrViolations    = "violations"
	AttrCancelledFlow = "cancelled_flow"
	AttrReroutedFlow  = "rerouted_flow"
)

// Spill-subsystem attribute and counter names. The engine annotates job
// spans with these and accumulates same-named registry counters, so a
// trace export shows the out-of-core shuffle's work alongside the
// paper's Table I metrics.
const (
	AttrSpills       = "spills"
	AttrSpilledBytes = "spilled_bytes"
	AttrMergePasses  = "merge_passes"

	CounterSpills       = "spills"
	CounterSpilledBytes = "spilled bytes"
	CounterMergePasses  = "merge passes"
	CounterMergeSegs    = "merge segments"
	GaugeMergeFanIn     = "merge fan-in"
)

// Live driver metric names. The FF driver publishes these to the
// tracer's registry as rounds complete, so /metrics scrapes and the
// watch dashboard see run progress while the run is still going (the
// per-round trace spans only surface at export time).
const (
	GaugeFFRound       = "ff round"
	GaugeFFMaxFlow     = "ff max flow"
	GaugeFFActive      = "ff active vertices"
	CounterFFAPaths    = "ff augmenting paths"
	CounterFFSubmitted = "ff submitted paths"
	CounterFFRounds    = "ff rounds"
)

// Attr is one span annotation: an int64 metric or a string label.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Value returns the attribute's value as an any, for JSON export.
func (a *Attr) Value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// Span is one timed region of the computation. Spans form a hierarchy
// through their parent link. All methods are safe on a nil receiver
// (no-ops), which is how untraced runs execute instrumented code paths.
type Span struct {
	t      *Tracer
	id     int64
	parent int64 // 0 = root
	name   string
	cat    string
	tid    int64 // Chrome trace "thread" lane
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []Attr
	// remote is the master-trace position a shipped root span stitches
	// under (zero for local-only spans). See ship.go.
	remote Context
}

// Tracer records spans and hosts the metrics registry. Create with New;
// a nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	spans  []*Span
	nextID int64
	reg    *Registry
}

// New creates an empty tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now(), reg: NewRegistry()}
}

// Registry returns the tracer's metrics registry (nil for a nil tracer;
// the nil registry's methods are no-ops).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Start opens a new span under parent (nil parent = a root span) and
// returns it. The caller must End it. On a nil tracer it returns nil,
// which every Span method accepts.
func (t *Tracer) Start(cat, name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{t: t, id: t.nextID, name: name, cat: cat, tid: 1, start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.spans = append(t.spans, s)
	return s
}

// End closes the span, fixing its duration. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
}

// SetInt sets (or overwrites) an integer annotation.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i] = Attr{Key: key, Int: v}
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetStr sets (or overwrites) a string annotation.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i] = Attr{Key: key, Str: v, IsStr: true}
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
}

// SetTID assigns the span's Chrome-trace lane (default 1). Concurrent
// spans on distinct lanes render side by side in the trace viewer; the
// MR engine uses one lane per simulated cluster node.
func (s *Span) SetTID(tid int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.tid = tid
}

// Int returns an integer annotation's value.
func (s *Span) Int(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key && !s.attrs[i].IsStr {
			return s.attrs[i].Int, true
		}
	}
	return 0, false
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Cat returns the span's category ("" for nil).
func (s *Span) Cat() string {
	if s == nil {
		return ""
	}
	return s.cat
}

// Duration returns the span's recorded duration (time so far if the
// span has not ended; 0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.durLocked()
}

func (s *Span) durLocked() time.Duration {
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// snapshot is one span's state copied out under the tracer lock, used by
// the exporters so they can format without holding the lock.
type snapshot struct {
	id, parent int64
	name, cat  string
	tid        int64
	startUS    int64 // microseconds since tracer start
	durUS      int64
	attrs      []Attr
}

func (t *Tracer) snapshots() []snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]snapshot, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, snapshot{
			id: s.id, parent: s.parent, name: s.name, cat: s.cat, tid: s.tid,
			startUS: s.start.Sub(t.start).Microseconds(),
			durUS:   s.durLocked().Microseconds(),
			attrs:   append([]Attr(nil), s.attrs...),
		})
	}
	return out
}

// childrenOf returns snapshots of parent's direct children with the
// given category, in start order.
func (t *Tracer) childrenOf(parent *Span, cat string) []snapshot {
	if t == nil {
		return nil
	}
	var out []snapshot
	for _, sn := range t.snapshots() {
		if sn.cat == cat && (parent == nil || sn.parent == parent.id) {
			out = append(out, sn)
		}
	}
	return out
}
