package trace

import "time"

// This file is the cross-process half of the tracer: a worker records
// spans into its own local Tracer, drains the finished ones as
// ShippedSpans, and the master imports them into its tracer under the
// position a Context named — so one exported trace shows both sides of
// every RPC. The shipping transport (batching, at-least-once resend,
// dedup, clock-offset correction) lives in internal/distmr; this file
// only defines the span-side primitives it composes.

// Context identifies a position in the master's trace hierarchy. It
// rides every task-dispatch, prefetch and aug_proc RPC so spans recorded
// on the remote side can be stitched back under the span that caused
// them. The zero Context means "no tracing position" and imports under
// it become root spans.
type Context struct {
	// Run is the id of the enclosing round (or run) span on the master,
	// for grouping; 0 when the master runs untraced.
	Run int64
	// Job is the distmr job sequence number — the import router uses it
	// to drop spans from jobs that have already concluded.
	Job int64
	// Round is the algorithm round the job belongs to.
	Round int64
	// Span is the id, in the master's tracer, of the parent span a
	// shipped root span is stitched under (the job span for tasks).
	Span int64
}

// ID returns the span's tracer-local id (0 for nil — ids start at 1).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetRemote tags a root span with the master-trace position it should be
// stitched under when shipped. Child spans inherit their position from
// their parent chain and don't need a Context.
func (s *Span) SetRemote(ctx Context) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.remote = ctx
}

// ShippedSpan is one finished span extracted from a recording process's
// tracer for shipment. IDs and Parent are tracer-local to the recording
// process; the importer remaps them. Start is the recorder's wall clock,
// which the importer corrects by the estimated clock offset.
type ShippedSpan struct {
	ID     int64
	Parent int64 // 0 = root: stitch under Remote.Span
	Name   string
	Cat    string
	TID    int64
	Start  time.Time
	Dur    time.Duration
	Remote Context
	Attrs  []Attr
}

// Drain removes and returns every finished span whose whole ancestor
// chain has also finished (a parent whose id is no longer present counts
// as finished: it was drained earlier). Spans are returned in id order
// — parents before children, since ids are assigned at Start — so an
// importer can remap Parent references in one forward pass. Draining
// complete subtrees only is what guarantees a batch never references a
// parent the importer hasn't seen.
func (t *Tracer) Drain() []ShippedSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	byID := make(map[int64]*Span, len(t.spans))
	for _, s := range t.spans {
		if s.ended {
			byID[s.id] = s
		}
	}
	complete := func(s *Span) bool {
		for {
			if !s.ended {
				return false
			}
			if s.parent == 0 {
				return true
			}
			p, ok := byID[s.parent]
			if !ok {
				// The parent is either unended (not in byID — but then
				// this chain has an unended ancestor and the unended
				// check below catches it via the parent's own entry) or
				// already drained. Distinguish by scanning the live set.
				return !t.liveLocked(s.parent)
			}
			s = p
		}
	}
	var out []ShippedSpan
	keep := t.spans[:0]
	for _, s := range t.spans {
		if !complete(s) {
			keep = append(keep, s)
			continue
		}
		out = append(out, ShippedSpan{
			ID: s.id, Parent: s.parent, Name: s.name, Cat: s.cat, TID: s.tid,
			Start: s.start, Dur: s.dur, Remote: s.remote,
			Attrs: append([]Attr(nil), s.attrs...),
		})
	}
	for i := len(keep); i < len(t.spans); i++ {
		t.spans[i] = nil
	}
	t.spans = keep
	return out
}

// liveLocked reports whether a span with the given id is still held by
// the tracer. Callers hold t.mu.
func (t *Tracer) liveLocked(id int64) bool {
	for _, s := range t.spans {
		if s.id == id {
			return true
		}
	}
	return false
}

// ImportedSpan describes one remote span being imported into this
// tracer. Parent is an id in THIS tracer (0 = root); Start must already
// be corrected to this process's clock.
type ImportedSpan struct {
	Parent int64
	Name   string
	Cat    string
	TID    int64
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Import records an already-finished remote span and returns its id in
// this tracer (0 on a nil tracer).
func (t *Tracer) Import(sp *ImportedSpan) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{
		t: t, id: t.nextID, parent: sp.Parent, name: sp.Name, cat: sp.Cat,
		tid: sp.TID, start: sp.Start, dur: sp.Dur, ended: true,
		attrs: append([]Attr(nil), sp.Attrs...),
	}
	if s.tid == 0 {
		s.tid = 1
	}
	t.spans = append(t.spans, s)
	return s.id
}
