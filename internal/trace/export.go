package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing / Perfetto "JSON Array" flavour). Spans export as
// complete events (ph "X"); registry metrics export as counter events
// (ph "C") stamped at the end of the trace.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans and registry metrics as a
// Chrome trace_event JSON document, loadable in chrome://tracing or
// Perfetto. Unended spans are exported with their duration so far.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	var endTS int64
	for _, sn := range t.snapshots() {
		args := make(map[string]any, len(sn.attrs)+2)
		for i := range sn.attrs {
			args[sn.attrs[i].Key] = sn.attrs[i].Value()
		}
		// The span's own id travels in the args so tools reading the
		// exported file (the critical-path analyzer) can rebuild the
		// span DAG from parent_span references.
		args["span"] = sn.id
		if sn.parent != 0 {
			args["parent_span"] = sn.parent
		}
		dur := sn.durUS
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sn.name, Cat: sn.cat, Ph: "X",
			Ts: sn.startUS, Dur: &dur, Pid: 1, Tid: sn.tid, Args: args,
		})
		if e := sn.startUS + sn.durUS; e > endTS {
			endTS = e
		}
	}
	reg := t.Registry()
	counters := reg.CounterSnapshot()
	for _, name := range sortedKeys(counters) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: "counter", Ph: "C", Ts: endTS, Pid: 1, Tid: 1,
			Args: map[string]any{"value": counters[name]},
		})
	}
	gauges := reg.GaugeSnapshot()
	for _, name := range sortedKeys(gauges) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: "gauge", Ph: "C", Ts: endTS, Pid: 1, Tid: 1,
			Args: map[string]any{"value": gauges[name].Last, "max": gauges[name].Max},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteCSV exports every span as one CSV row: id, parent, category,
// name, lane, start/duration in microseconds, and the annotations as a
// "key=value|key=value" list. Counters and gauges follow as pseudo-rows
// with empty timing columns.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "parent", "cat", "name", "tid", "start_us", "dur_us", "attrs"}); err != nil {
		return err
	}
	for _, sn := range t.snapshots() {
		parts := make([]string, 0, len(sn.attrs))
		for i := range sn.attrs {
			parts = append(parts, fmt.Sprintf("%s=%v", sn.attrs[i].Key, sn.attrs[i].Value()))
		}
		err := cw.Write([]string{
			fmt.Sprint(sn.id), fmt.Sprint(sn.parent), sn.cat, sn.name,
			fmt.Sprint(sn.tid), fmt.Sprint(sn.startUS), fmt.Sprint(sn.durUS),
			strings.Join(parts, "|"),
		})
		if err != nil {
			return err
		}
	}
	reg := t.Registry()
	counters := reg.CounterSnapshot()
	for _, name := range sortedKeys(counters) {
		if err := cw.Write([]string{"", "", "counter", name, "", "", "", fmt.Sprintf("value=%d", counters[name])}); err != nil {
			return err
		}
	}
	gauges := reg.GaugeSnapshot()
	for _, name := range sortedKeys(gauges) {
		gv := gauges[name]
		if err := cw.Write([]string{"", "", "gauge", name, "", "", "", fmt.Sprintf("value=%d|max=%d", gv.Last, gv.Max)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParsedEvent is one trace_event read back from an exported JSON file,
// exposed so tests and tools can assert on emitted traces without
// depending on the wire field names.
type ParsedEvent struct {
	Name string
	Cat  string
	Ts   int64
	Dur  int64
	Tid  int64
	Args map[string]any
}

// Int returns an integer arg (trace_event JSON numbers decode as
// float64; values are converted back).
func (e *ParsedEvent) Int(key string) (int64, bool) {
	v, ok := e.Args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}

// ParseChromeTrace decodes a document written by WriteChromeTrace,
// returning its events in timestamp order (ties broken by span id via
// original order, which snapshots preserve).
func ParseChromeTrace(data []byte) ([]ParsedEvent, error) {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome trace: %w", err)
	}
	out := make([]ParsedEvent, 0, len(doc.TraceEvents))
	for _, e := range doc.TraceEvents {
		out = append(out, ParsedEvent{Name: e.Name, Cat: e.Cat, Ts: e.Ts, Dur: e.Dur, Tid: e.Tid, Args: e.Args})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out, nil
}
