package ffmr_test

import (
	"io"
	"log/slog"
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// BenchmarkObsvOverhead measures the live observability stack's cost on
// one full FF5 computation (the FB3 chain member on a 3-worker
// distributed backend). "off" is the zero obsv.Options baseline; "logs"
// adds structured logging at the CLI's default info level on the
// driver, master, and every worker (to io.Discard, so the cost measured
// is instrumentation, not the terminal); "full" additionally arms the
// admin HTTP servers on
// master and workers, a live metrics registry, and per-worker flight
// recorders. BENCH_obsv.json records the measured deltas; the full
// stack must stay within a few percent of off (the observability layer
// is sold as safe to leave on in production).
func BenchmarkObsvOverhead(b *testing.B) {
	sc := benchScale()
	sc.Chain = sc.Chain[:3] // through FB3
	chain, err := sc.BuildChain()
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(chain[2], sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		b.Fatal(err)
	}

	newCluster := func() *mapreduce.Cluster {
		fs := dfs.New(dfs.Config{Nodes: 4, BlockSize: 64 << 10, Replication: 2})
		c := mapreduce.NewCluster(4, 4, fs)
		c.Cost = mapreduce.ZeroCostModel()
		return c
	}
	run := func(b *testing.B, h *distmr.Harness, opts core.Options) {
		b.Helper()
		var flow, rounds int64
		for i := 0; i < b.N; i++ {
			cluster := newCluster()
			cluster.Distributed = h.Master
			res, err := core.Run(cluster, in, opts)
			if err != nil {
				b.Fatal(err)
			}
			flow, rounds = res.MaxFlow, int64(res.Rounds)
		}
		b.ReportMetric(float64(flow), "flow")
		b.ReportMetric(float64(rounds), "rounds")
	}

	b.Run("off", func(b *testing.B) {
		h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5})
	})

	b.Run("logs", func(b *testing.B) {
		logger := obsv.NewLogger(io.Discard, "text", slog.LevelInfo)
		h, err := distmr.StartHarness(distmr.HarnessConfig{
			Workers:    3,
			Master:     distmr.Config{Obsv: obsv.Options{Logger: logger}},
			WorkerObsv: obsv.Options{Logger: logger},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5, Log: logger})
	})

	b.Run("full", func(b *testing.B) {
		logger := obsv.NewLogger(io.Discard, "text", slog.LevelInfo)
		tr := trace.New()
		h, err := distmr.StartHarness(distmr.HarnessConfig{
			Workers: 3,
			Tracer:  tr,
			Master: distmr.Config{Obsv: obsv.Options{
				Logger: logger, AdminAddr: "127.0.0.1:0", FlightDir: b.TempDir(),
			}},
			WorkerObsv: obsv.Options{
				Logger: logger, AdminAddr: "127.0.0.1:0", FlightDir: b.TempDir(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5, Log: logger, Tracer: tr})
	})
}
