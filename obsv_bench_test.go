package ffmr_test

import (
	"io"
	"log/slog"
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// BenchmarkObsvOverhead measures the live observability stack's cost on
// one full FF5 computation (the FB3 chain member on a 3-worker
// distributed backend). "off" is the zero obsv.Options baseline; "logs"
// adds structured logging at the CLI's default info level on the
// driver, master, and every worker (to io.Discard, so the cost measured
// is instrumentation, not the terminal); "full" additionally arms the
// admin HTTP servers on
// master and workers, a live metrics registry, and per-worker flight
// recorders. BENCH_obsv.json records the measured deltas; the full
// stack must stay within a few percent of off (the observability layer
// is sold as safe to leave on in production).
func BenchmarkObsvOverhead(b *testing.B) {
	sc := benchScale()
	sc.Chain = sc.Chain[:3] // through FB3
	chain, err := sc.BuildChain()
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(chain[2], sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		b.Fatal(err)
	}

	newCluster := func() *mapreduce.Cluster {
		fs := dfs.New(dfs.Config{Nodes: 4, BlockSize: 64 << 10, Replication: 2})
		c := mapreduce.NewCluster(4, 4, fs)
		c.Cost = mapreduce.ZeroCostModel()
		return c
	}
	run := func(b *testing.B, h *distmr.Harness, opts core.Options) {
		b.Helper()
		var flow, rounds int64
		for i := 0; i < b.N; i++ {
			cluster := newCluster()
			cluster.Distributed = h.Master
			res, err := core.Run(cluster, in, opts)
			if err != nil {
				b.Fatal(err)
			}
			flow, rounds = res.MaxFlow, int64(res.Rounds)
		}
		b.ReportMetric(float64(flow), "flow")
		b.ReportMetric(float64(rounds), "rounds")
	}

	b.Run("off", func(b *testing.B) {
		h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5})
	})

	b.Run("logs", func(b *testing.B) {
		logger := obsv.NewLogger(io.Discard, "text", slog.LevelInfo)
		h, err := distmr.StartHarness(distmr.HarnessConfig{
			Workers:    3,
			Master:     distmr.Config{Obsv: obsv.Options{Logger: logger}},
			WorkerObsv: obsv.Options{Logger: logger},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5, Log: logger})
	})

	b.Run("full", func(b *testing.B) {
		logger := obsv.NewLogger(io.Discard, "text", slog.LevelInfo)
		tr := trace.New()
		h, err := distmr.StartHarness(distmr.HarnessConfig{
			Workers: 3,
			Tracer:  tr,
			Master: distmr.Config{Obsv: obsv.Options{
				Logger: logger, AdminAddr: "127.0.0.1:0", FlightDir: b.TempDir(),
			}},
			WorkerObsv: obsv.Options{
				Logger: logger, AdminAddr: "127.0.0.1:0", FlightDir: b.TempDir(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h, core.Options{Variant: core.FF5, Log: logger, Tracer: tr})
	})
}

// BenchmarkTraceShipping isolates the cross-process tracing pipeline
// (DESIGN.md §14) from the rest of the observability stack: the same
// distributed FF5 run with no tracer anywhere ("off") versus a master
// tracer ("on") — which arms worker-side span recording, heartbeat
// span batches, counter/histogram snapshot diffs, clock-offset
// estimation and master-side stitching. The budget is <5% over "off";
// BENCH_obsv.json records the measurement. "on" also reports how many
// task-service samples were shipped per run, so the case provably
// exercised the pipeline rather than a no-op path.
func BenchmarkTraceShipping(b *testing.B) {
	sc := benchScale()
	sc.Chain = sc.Chain[:3]
	chain, err := sc.BuildChain()
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(chain[2], sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		b.Fatal(err)
	}

	// One harness + tracer per iteration, in both cases: a trace belongs
	// to one run in real use, and sharing a tracer across b.N runs makes
	// the live heap (and so GC scan work) grow with the iteration count —
	// measuring the benchmark's own accumulation, not the pipeline. The
	// harness setup cost is symmetric and inside the measured loop for
	// both cases, so the off/on ratio is still the shipping overhead.
	run := func(b *testing.B, traced bool) {
		b.Helper()
		var shipped int64
		for i := 0; i < b.N; i++ {
			var tr *trace.Tracer
			if traced {
				tr = trace.New()
			}
			h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3, Tracer: tr})
			if err != nil {
				b.Fatal(err)
			}
			fs := dfs.New(dfs.Config{Nodes: 4, BlockSize: 64 << 10, Replication: 2})
			cluster := mapreduce.NewCluster(4, 4, fs)
			cluster.Cost = mapreduce.ZeroCostModel()
			cluster.Distributed = h.Master
			cluster.Tracer = tr
			_, err = core.Run(cluster, in, core.Options{Variant: core.FF5, Tracer: tr})
			h.Close()
			if err != nil {
				b.Fatal(err)
			}
			if traced {
				shipped += tr.Registry().HistogramSnapshot()[distmr.HistTaskServiceNS].Count
			}
		}
		if traced {
			if shipped == 0 {
				b.Fatal("no task-service samples shipped: the traced case is not exercising the pipeline")
			}
			b.ReportMetric(float64(shipped)/float64(b.N), "tasks_shipped/op")
		}
	}

	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
