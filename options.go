package ffmr

import (
	"time"

	"ffmr/internal/core"
	"ffmr/internal/mapreduce"
)

// TerminationMode selects the multi-round stopping rule.
type TerminationMode int

const (
	// TerminationStrict stops only in a quiescent round that also
	// accepted no augmenting path (default; always yields a true maximum
	// flow in our validation).
	TerminationStrict TerminationMode = iota
	// TerminationPaper stops exactly per Fig. 2 of the paper, as soon as
	// the source-move or sink-move counter reaches zero.
	TerminationPaper
)

// config collects the Compute settings before translation into the
// internal engine and algorithm options.
type config struct {
	nodes        int
	slotsPerNode int
	blockSize    int
	replication  int
	realistic    bool
	costModel    *mapreduce.CostModel

	opts core.Options
}

func defaultConfig() config {
	return config{
		nodes:        4,
		slotsPerNode: 4,
		blockSize:    4 << 20,
		replication:  2,
	}
}

// Option customizes Compute.
type Option func(*config)

// WithVariant selects the algorithm version (default FF5, the fastest).
func WithVariant(v Variant) Option {
	return func(c *config) { c.opts.Variant = core.Variant(v) }
}

// WithNodes sets the number of simulated cluster slave nodes (default 4;
// the paper uses 20).
func WithNodes(n int) Option {
	return func(c *config) { c.nodes = n }
}

// WithSlotsPerNode sets concurrent worker slots per node (default 4; the
// paper configures 15).
func WithSlotsPerNode(n int) Option {
	return func(c *config) { c.slotsPerNode = n }
}

// WithK sets the per-vertex excess-path limit k for FF1..FF4 (default 4).
// FF5 derives k from each vertex's degree, per the paper.
func WithK(k int) Option {
	return func(c *config) { c.opts.K = k }
}

// WithReducers sets the number of reduce tasks per round.
func WithReducers(n int) Option {
	return func(c *config) { c.opts.Reducers = n }
}

// WithMaxRounds bounds the number of max-flow rounds (default 1000).
func WithMaxRounds(n int) Option {
	return func(c *config) { c.opts.MaxRounds = n }
}

// WithTermination selects the stopping rule (default TerminationStrict).
func WithTermination(m TerminationMode) Option {
	return func(c *config) { c.opts.Termination = core.TerminationMode(m) }
}

// WithoutBidirectionalSearch disables sink-side excess paths — the
// ablation for the paper's Section III-B2 optimization.
func WithoutBidirectionalSearch() Option {
	return func(c *config) { c.opts.DisableBidirectional = true }
}

// WithoutMultiplePaths stores a single excess path per vertex — the
// ablation for the paper's Section III-B3 optimization.
func WithoutMultiplePaths() Option {
	return func(c *config) { c.opts.DisableMultiPaths = true }
}

// WithRealisticCost applies the Hadoop-like cost model (per-round job
// overhead, disk and network bandwidth charges) to the simulated runtime.
// The default is a zero-overhead model in which simulated time reflects
// only measured computation.
func WithRealisticCost() Option {
	return func(c *config) { c.realistic = true }
}

// WithRoundOverhead sets a custom fixed per-round framework overhead for
// the simulated runtime (implies a realistic cost model).
func WithRoundOverhead(d time.Duration) Option {
	return func(c *config) {
		c.realistic = true
		cm := mapreduce.DefaultCostModel()
		cm.RoundOverhead = d
		c.costModel = &cm
	}
}

// WithBlockSize sets the simulated DFS block size in bytes (default 4 MiB
// here; HDFS commonly uses 64 MiB).
func WithBlockSize(n int) Option {
	return func(c *config) { c.blockSize = n }
}
