package ffmr_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageComments fails if any package in the module — the root
// package, every internal/* package and every cmd/* binary — lacks a
// package doc comment. Godoc is the primary architecture documentation
// of this repo (see README.md), so an undocumented package is a CI
// failure, not a style nit.
func TestPackageComments(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		matches, err := filepath.Glob(filepath.Join(path, "*.go"))
		if err != nil {
			return err
		}
		if len(matches) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			if !packageHasDoc(pkg) {
				t.Errorf("package %s (in %s) has no package doc comment", name, dir)
			}
		}
	}
}

// TestCodecDocComments fails if any exported codec function — an
// Encode*/Decode*/Append* across the module — lacks a doc comment. The
// wire formats are spec'd in DESIGN.md §13 and the codecs are the
// normative implementation; an undocumented one can't point a reader at
// its framing rules, versioning policy, or buffer-aliasing contract.
func TestCodecDocComments(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, "Encode") && !strings.HasPrefix(name, "Decode") &&
				!strings.HasPrefix(name, "Append") {
				continue
			}
			if fd.Doc == nil || strings.TrimSpace(fd.Doc.Text()) == "" {
				t.Errorf("%s: exported codec func %s has no doc comment", path, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func packageHasDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}
